module Sim = Simul.Sim
module Latency = Netsim.Latency
module Spec = Txn.Spec
module Op = Txn.Op
module Result = Txn.Result
module Engine = Threev.Engine
module Policy = Threev.Policy
module Mvstore = Store.Mvstore
module Counter_set = Stats.Counter_set
module Histogram = Stats.Histogram
module Table = Stats.Table
module Generator = Workload.Generator

type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : quick:bool -> string;
}

(* ------------------------------------------------------------ helpers *)

let ms x = Printf.sprintf "%.2f" (1000. *. x)

let hist_cells h =
  [ ms (Histogram.percentile h 50.); ms (Histogram.percentile h 99.);
    ms (Histogram.max h) ]

(* Build, drive and return a 3V engine along with its outcome. [plan]
   installs a fault plan (message loss, partitions, crashes) through a
   {!Fault.Injector} created on the same simulation. *)
let drive_3v ~seed ~nodes ~policy ?(nc_mode = false) ?(abort_p = 0.)
    ?(latency = Latency.Exponential 0.003) ?(think = 0.0005) ?(poll = 0.01)
    ?(deadlock_timeout = 0.05) ?(cfg_f = fun (c : Engine.config) -> c) ?plan
    gen setup =
  let sim = Sim.create ~seed () in
  let cfg =
    cfg_f
      {
        (Engine.default_config ~nodes) with
        Engine.latency;
        think_time = think;
        poll_interval = poll;
        policy;
        nc_mode;
        deadlock_timeout;
        abort_probability = abort_p;
      }
  in
  let faults = Option.map (Fault.Injector.create sim) plan in
  let engine = Engine.create sim cfg ?faults () in
  let outcome = Runner.drive sim (Engine.packed engine) gen setup in
  (outcome, engine)

let drive_2pc ~seed ~nodes ?(latency = Latency.Exponential 0.003)
    ?(think = 0.0005) ?(deadlock_timeout = 0.05) gen setup =
  let sim = Sim.create ~seed () in
  let cfg =
    { Baselines.Global_2pc.nodes; latency; think_time = think; deadlock_timeout }
  in
  let engine = Baselines.Global_2pc.create sim cfg in
  Runner.drive sim (Baselines.Global_2pc.packed engine) gen setup

let drive_nocoord ~seed ~nodes ?(latency = Latency.Exponential 0.003)
    ?(think = 0.0005) gen setup =
  let sim = Sim.create ~seed () in
  let cfg = { Baselines.No_coord.nodes; latency; think_time = think } in
  let engine = Baselines.No_coord.create sim cfg in
  Runner.drive sim (Baselines.No_coord.packed engine) gen setup

let drive_manual ~seed ~nodes ~period ~safety_delay
    ?(latency = Latency.Exponential 0.003) ?(think = 0.0005) gen setup =
  let sim = Sim.create ~seed () in
  let cfg =
    {
      Baselines.Manual_versioning.nodes;
      latency;
      think_time = think;
      period;
      safety_delay;
    }
  in
  let engine = Baselines.Manual_versioning.create sim cfg in
  Runner.drive sim (Baselines.Manual_versioning.packed engine) gen setup

let rec count_write_ops_subtxn (st : Spec.subtxn) =
  List.length (List.filter Op.is_write st.Spec.ops)
  + List.fold_left (fun acc c -> acc + count_write_ops_subtxn c) 0
      st.Spec.children

(* Total committed write operations in a history — denominator for the
   copy-on-write / dual-write overhead ratios. *)
let committed_writes (outcome : Runner.outcome) =
  List.fold_left
    (fun acc ((spec : Spec.t), res) ->
      if Result.committed res && spec.Spec.kind <> Spec.Read_only then
        acc + count_write_ops_subtxn spec.Spec.root
      else acc)
    0 outcome.Runner.history

let committed_updates (outcome : Runner.outcome) =
  List.fold_left
    (fun acc ((spec : Spec.t), res) ->
      if Result.committed res && spec.Spec.kind <> Spec.Read_only then acc + 1
      else acc)
    0 outcome.Runner.history

let notes lines = String.concat "\n" lines ^ "\n"

(* --------------------------------------------------------------- T1 *)

let run_t1 ~quick:_ =
  let replay = Table1.run () in
  let checks =
    [
      ("advancement completed (all 4 phases + GC)", replay.Table1.advancement_completed);
      ("read version advanced to 1 everywhere", replay.Table1.read_version_after = 1);
      ("update tx i committed", replay.Table1.txn_i_committed);
      ("update tx j committed", replay.Table1.txn_j_committed);
      ("reads x and y saw only version-0 data", replay.Table1.reads_saw_version0);
      ( "final counters match the paper",
        replay.Table1.final_counters
        = [
            ("C1[p->p]", 1); ("C1[p->q]", 1); ("C1[p->s]", 1); ("C1[q->p]", 1);
            ("C2[q->p]", 1); ("C2[q->q]", 1); ("R1[p->p]", 1); ("R1[p->q]", 1);
            ("R1[p->s]", 1); ("R1[q->p]", 1); ("R2[q->p]", 1); ("R2[q->q]", 1);
          ] );
    ]
  in
  let table = Table.create ~title:"T1 checks" ~columns:[ "check"; "ok" ] in
  List.iter
    (fun (what, ok) -> Table.add_row table [ what; string_of_bool ok ])
    checks;
  "Replay of the paper's Table 1 (example execution sequence, sites p/q/s):\n\n"
  ^ Table1.render_trace replay ^ "\n" ^ Table.to_string table ^ "\n"
  ^ notes
      [
        "Matches the paper: subtx iq performs the dual write on D (versions";
        "1 and 2) but updates E only in version 1; node p learns of the";
        "advancement implicitly from jp; site s is notified only at t=28;";
        "and all request counters equal completion counters at the end.";
      ]

(* --------------------------------------------------------------- F2 *)

let run_f2 ~quick:_ =
  let replay = Table1.run () in
  "Figure 2 version layouts during the Table 1 replay (versions per item;\n\
   vu/vr are the site's update/read versions):\n\n"
  ^ Table1.render_snapshots replay
  ^ notes
      [
        "";
        "Expected shape (paper Figure 2): at t=12 only D has a version-2";
        "copy; at t=20 A and D each hold three simultaneous versions";
        "(0, 1, 2) — the paper's maximum; after advancement and garbage";
        "collection every item is relabelled so only versions >= 1 remain.";
      ]

(* --------------------------------------------------------------- F1 *)

let run_f1 ~quick =
  let nodes = 4 in
  let setup =
    {
      Runner.default_setup with
      Runner.seed = 11;
      duration = (if quick then 0.5 else 2.0);
      settle = 3.0;
    }
  in
  let gen =
    Workload.Hospital.generator
      {
        (Workload.Hospital.default ~nodes) with
        Workload.Hospital.front_end = true;
        read_ratio = 0.3;
        arrival_rate = 400.;
        visit_fanout = 2;
      }
  in
  let table =
    Table.create ~title:"F1: hospital front-end workload (Figure 1)"
      ~columns:
        [
          "engine"; "committed"; "throughput/s"; "partial reads"; "dirty reads";
          "read p99 (ms)"; "missed upd/read";
        ]
  in
  let add (outcome : Runner.outcome) =
    let atom = Runner.atomicity outcome in
    let stale = Runner.staleness outcome in
    Table.add_row table
      [
        outcome.Runner.engine_name;
        Table.cell_i outcome.Runner.committed;
        Table.cell_f outcome.Runner.throughput;
        Table.cell_i atom.Checker.Atomicity.partial_reads;
        Table.cell_i atom.Checker.Atomicity.dirty_reads;
        ms (Histogram.percentile outcome.Runner.read_latency 99.);
        Printf.sprintf "%.2f" stale.Checker.Staleness.mean_missed;
      ]
  in
  let o3v, _ =
    drive_3v ~seed:11 ~nodes ~policy:(Policy.Periodic 0.1) gen setup
  in
  add o3v;
  add (drive_nocoord ~seed:11 ~nodes gen setup);
  add (drive_2pc ~seed:11 ~nodes gen setup);
  Table.to_string table
  ^ notes
      [
        "";
        "Shape check: only no-coordination shows partial reads (a patient";
        "inquiry observing some but not all of a visit's charges — the §1";
        "anomaly); 3V and global-2PC are clean, but 2PC pays for it in read";
        "tail latency while 3V reads only pay staleness.";
      ]

(* --------------------------------------------------------------- E1 *)

let run_e1 ~quick =
  let node_counts = if quick then [ 2; 4 ] else [ 2; 4; 8; 16 ] in
  let table =
    Table.create
      ~title:"E1: scalability — throughput and latency vs node count"
      ~columns:
        [
          "nodes"; "engine"; "committed"; "aborted"; "throughput/s";
          "read p50 (ms)"; "read p99 (ms)"; "upd-block p99 (ms)";
          "partial reads";
        ]
  in
  List.iter
    (fun nodes ->
      let rate = 150. *. float_of_int nodes in
      let gen =
        Workload.Synthetic.generator
          {
            (Workload.Synthetic.default ~nodes) with
            Workload.Synthetic.arrival_rate = rate;
            fanout = 2;
            read_ratio = 0.25;
            keys_per_node = 25;
            zipf_s = 0.9;
          }
      in
      let setup =
        {
          Runner.default_setup with
          Runner.seed = 21 + nodes;
          duration = (if quick then 0.5 else 2.0);
          settle = 3.0;
        }
      in
      let add (outcome : Runner.outcome) =
        let atom = Runner.atomicity outcome in
        Table.add_row table
          [
            Table.cell_i nodes;
            outcome.Runner.engine_name;
            Table.cell_i outcome.Runner.committed;
            Table.cell_i outcome.Runner.aborted;
            Table.cell_f outcome.Runner.throughput;
            ms (Histogram.percentile outcome.Runner.read_latency 50.);
            ms (Histogram.percentile outcome.Runner.read_latency 99.);
            ms (Histogram.percentile outcome.Runner.update_blocking 99.);
            Table.cell_i atom.Checker.Atomicity.partial_reads;
          ]
      in
      let o3v, _ =
        drive_3v ~seed:(21 + nodes) ~nodes ~policy:(Policy.Periodic 0.2) gen
          setup
      in
      add o3v;
      add (drive_nocoord ~seed:(21 + nodes) ~nodes gen setup);
      add (drive_2pc ~seed:(21 + nodes) ~nodes gen setup);
      add
        (drive_manual ~seed:(21 + nodes) ~nodes ~period:0.5 ~safety_delay:0.2
           gen setup))
    node_counts;
  Table.to_string table
  ^ notes
      [
        "";
        "Shape check (paper §1/§8): 3V tracks no-coordination closely and";
        "scales with node count while staying anomaly-free; global-2PC";
        "commits less under contention (aborts, lock waits) and its read";
        "p99 is far above 3V's; manual versioning matches 3V throughput";
        "but see E8 for its staleness/correctness trade-off.";
      ]

(* --------------------------------------------------------------- E2 *)

let run_e2 ~quick =
  let nodes = 4 in
  let rates = if quick then [ 200. ] else [ 100.; 400.; 800. ] in
  let table =
    Table.create
      ~title:"E2: reads are never delayed — read latency vs update pressure"
      ~columns:
        [
          "update rate/s"; "engine"; "reads"; "read p50 (ms)"; "read p99 (ms)";
          "read max (ms)"; "aborted reads";
        ]
  in
  List.iter
    (fun rate ->
      let gen =
        Workload.Hospital.generator
          {
            (Workload.Hospital.default ~nodes) with
            Workload.Hospital.arrival_rate = rate /. 0.75;
            read_ratio = 0.25;
            patients = 10 (* hot patients -> real lock contention *);
            zipf_s = 1.2;
          }
      in
      let setup =
        {
          Runner.default_setup with
          Runner.seed = 31;
          duration = (if quick then 0.5 else 2.0);
          settle = 3.0;
        }
      in
      let add (outcome : Runner.outcome) =
        let aborted_reads =
          List.length
            (List.filter
               (fun ((spec : Spec.t), res) ->
                 spec.Spec.kind = Spec.Read_only && not (Result.committed res))
               outcome.Runner.history)
        in
        Table.add_row table
          ([ Table.cell_f rate; outcome.Runner.engine_name;
             Table.cell_i (Histogram.count outcome.Runner.read_latency) ]
          @ hist_cells outcome.Runner.read_latency
          @ [ Table.cell_i aborted_reads ])
      in
      let o3v, _ =
        drive_3v ~seed:31 ~nodes ~policy:(Policy.Periodic 0.1) gen setup
      in
      add o3v;
      add (drive_2pc ~seed:31 ~nodes gen setup))
    rates;
  Table.to_string table
  ^ notes
      [
        "";
        "Shape check (§8): 3V read latency is flat in the update rate and";
        "no read ever aborts; under 2PC the read tail grows with update";
        "pressure because inquiries wait behind exclusive locks held across";
        "two-phase commits (and some deadlock-abort).";
      ]

(* --------------------------------------------------------------- E3 *)

let run_e3 ~quick =
  let nodes = 4 in
  let periods = if quick then [ 0.1; 0.5 ] else [ 0.05; 0.1; 0.2; 0.5; 1.0; 2.0 ] in
  let table =
    Table.create
      ~title:"E3: advancement period — data currency vs copy overhead"
      ~columns:
        [
          "period (s)"; "advancements"; "mean staleness (ms)";
          "max staleness (ms)"; "copies/update"; "missed upd/read";
        ]
  in
  List.iter
    (fun period ->
      let gen =
        Workload.Call_recording.generator
          {
            (Workload.Call_recording.default ~nodes) with
            Workload.Call_recording.arrival_rate = 500.;
          }
      in
      let setup =
        {
          Runner.default_setup with
          Runner.seed = 41;
          duration = (if quick then 1.0 else 4.0);
          settle = 4.0;
        }
      in
      let outcome, engine =
        drive_3v ~seed:41 ~nodes ~policy:(Policy.Periodic period) gen setup
      in
      let stale = Runner.staleness outcome in
      let updates = committed_updates outcome in
      let copies =
        Counter_set.get outcome.Runner.stats "store.copies_created"
      in
      Table.add_row table
        [
          Table.cell_f period;
          Table.cell_i (Engine.advancements_completed engine);
          ms stale.Checker.Staleness.mean_lag;
          ms stale.Checker.Staleness.max_lag;
          Printf.sprintf "%.3f"
            (if updates = 0 then 0.
             else float_of_int copies /. float_of_int updates);
          Printf.sprintf "%.2f" stale.Checker.Staleness.mean_missed;
        ])
    periods;
  Table.to_string table
  ^ notes
      [
        "";
        "Shape check (§7): the user trades currency for update performance —";
        "staleness grows roughly linearly with the advancement period while";
        "copy-on-write cost per update falls (copying happens once per item";
        "per advancement, so fewer advancements = fewer copies).";
      ]

(* --------------------------------------------------------------- E4 *)

let run_e4 ~quick =
  let configs =
    if quick then [ (4, 0.02, 1000.) ]
    else [ (2, 0.02, 600.); (4, 0.02, 1200.); (8, 0.01, 2400.); (4, 0.005, 1200.) ]
  in
  let table =
    Table.create
      ~title:"E4: at most three versions of any item (paper §4.4, 2a)"
      ~columns:
        [
          "nodes"; "adv period (s)"; "rate/s"; "advancements"; "max versions";
          "bound holds";
        ]
  in
  List.iter
    (fun (nodes, period, rate) ->
      let gen =
        Workload.Hospital.generator
          {
            (Workload.Hospital.default ~nodes) with
            Workload.Hospital.arrival_rate = rate;
            read_ratio = 0.2;
          }
      in
      let setup =
        {
          Runner.default_setup with
          Runner.seed = 51;
          duration = (if quick then 1.0 else 2.0);
          settle = 3.0;
        }
      in
      let _outcome, engine =
        drive_3v ~seed:51 ~nodes ~policy:(Policy.Periodic period)
          ~poll:(period /. 4.) gen setup
      in
      let maxv = Engine.max_versions_ever engine in
      Table.add_row table
        [
          Table.cell_i nodes;
          Table.cell_f period;
          Table.cell_f rate;
          Table.cell_i (Engine.advancements_completed engine);
          Table.cell_i maxv;
          string_of_bool (maxv <= 3);
        ])
    configs;
  Table.to_string table
  ^ notes
      [
        "";
        "Back-to-back advancements with stochastic message delays never push";
        "any item past three simultaneous versions, because an advancement";
        "instance only completes after every node acknowledged garbage";
        "collection of the version it retired.";
      ]

(* --------------------------------------------------------------- E5 *)

let run_e5 ~quick =
  let nodes = 4 in
  let ratios = if quick then [ 0.; 0.1 ] else [ 0.; 0.05; 0.1; 0.25; 0.5 ] in
  let table =
    Table.create
      ~title:"E5: graceful handling of non-commuting updates (NC3V, §5)"
      ~columns:
        [
          "nc ratio"; "engine"; "committed"; "aborted"; "throughput/s";
          "upd-block p99 (ms)"; "partial reads";
        ]
  in
  List.iter
    (fun nc_ratio ->
      let gen =
        Workload.Point_of_sale.generator
          {
            (Workload.Point_of_sale.default ~nodes) with
            Workload.Point_of_sale.nc_ratio;
            arrival_rate = 400.;
            read_ratio = 0.2;
          }
      in
      let setup =
        {
          Runner.default_setup with
          Runner.seed = 61;
          duration = (if quick then 0.5 else 2.0);
          settle = 3.0;
        }
      in
      let add (outcome : Runner.outcome) =
        let atom = Runner.atomicity outcome in
        Table.add_row table
          [
            Printf.sprintf "%.2f" nc_ratio;
            outcome.Runner.engine_name;
            Table.cell_i outcome.Runner.committed;
            Table.cell_i outcome.Runner.aborted;
            Table.cell_f outcome.Runner.throughput;
            ms (Histogram.percentile outcome.Runner.update_blocking 99.);
            Table.cell_i atom.Checker.Atomicity.partial_reads;
          ]
      in
      let o3v, _ =
        drive_3v ~seed:61 ~nodes ~policy:(Policy.Periodic 0.2) ~nc_mode:true
          gen setup
      in
      add o3v;
      add (drive_2pc ~seed:61 ~nodes gen setup))
    ratios;
  Table.to_string table
  ^ notes
      [
        "";
        "Shape check (§5/§8): at nc=0 commute locks never conflict, so 3V";
        "keeps its full throughput; as the non-commuting fraction grows,";
        "only the non-commuting minority pays 2PC/lock costs (some abort by";
        "the version-overtake rule or deadlock timeout) while reads stay";
        "anomaly-free. Global-2PC makes every transaction pay that cost.";
      ]

(* --------------------------------------------------------------- E6 *)

let run_e6 ~quick =
  let nodes = 4 in
  let configs =
    if quick then [ (0.1, 500.) ]
    else [ (0.05, 500.); (0.2, 500.); (1.0, 500.); (0.05, 2000.); (0.2, 2000.) ]
  in
  let table =
    Table.create
      ~title:
        "E6: dual-write overhead occurs only under advancement contention \
         (§2.3)"
      ~columns:
        [
          "adv period (s)"; "rate/s"; "writes"; "dual writes"; "dual %";
          "copies"; "copies/write";
        ]
  in
  List.iter
    (fun (period, rate) ->
      let gen =
        Workload.Hospital.generator
          {
            (Workload.Hospital.default ~nodes) with
            Workload.Hospital.arrival_rate = rate;
            read_ratio = 0.1;
            visit_fanout = 3;
          }
      in
      let setup =
        {
          Runner.default_setup with
          Runner.seed = 71;
          duration = (if quick then 1.0 else 3.0);
          settle = 3.0;
        }
      in
      let outcome, _engine =
        drive_3v ~seed:71 ~nodes ~policy:(Policy.Periodic period)
          ~latency:(Latency.Exponential 0.01) gen setup
      in
      let writes = committed_writes outcome in
      let dual = Counter_set.get outcome.Runner.stats "store.dual_writes_total" in
      let copies = Counter_set.get outcome.Runner.stats "store.copies_created" in
      Table.add_row table
        [
          Table.cell_f period;
          Table.cell_f rate;
          Table.cell_i writes;
          Table.cell_i dual;
          Table.cell_pct dual writes;
          Table.cell_i copies;
          Printf.sprintf "%.3f"
            (if writes = 0 then 0. else float_of_int copies /. float_of_int writes);
        ])
    configs;
  Table.to_string table
  ^ notes
      [
        "";
        "Shape check (§2.3): executing against both copies happens only when";
        "a straggler subtransaction hits an item that already has a newer";
        "copy — a tiny fraction of writes, growing with advancement";
        "frequency and in-flight transactions, and exactly the case that";
        "would have blocked the transaction in an ordinary system.";
      ]

(* --------------------------------------------------------------- E7 *)

let run_e7 ~quick =
  let nodes = 4 in
  let table =
    Table.create
      ~title:
        "E7: version advancement is asynchronous — user latency with and \
         without advancement churn (§8)"
      ~columns:
        [
          "policy"; "advancements"; "throughput/s"; "read p50 (ms)";
          "read p99 (ms)"; "upd-block p50 (ms)"; "upd-block p99 (ms)";
        ]
  in
  let run_policy policy =
    let gen =
      Workload.Hospital.generator
        {
          (Workload.Hospital.default ~nodes) with
          Workload.Hospital.arrival_rate = 600.;
        }
    in
    let setup =
      {
        Runner.default_setup with
        Runner.seed = 81;
        duration = (if quick then 0.5 else 3.0);
        settle = 3.0;
      }
    in
    let outcome, engine = drive_3v ~seed:81 ~nodes ~policy gen setup in
    Table.add_row table
      [
        Format.asprintf "%a" Policy.pp policy;
        Table.cell_i (Engine.advancements_completed engine);
        Table.cell_f outcome.Runner.throughput;
        ms (Histogram.percentile outcome.Runner.read_latency 50.);
        ms (Histogram.percentile outcome.Runner.read_latency 99.);
        ms (Histogram.percentile outcome.Runner.update_blocking 50.);
        ms (Histogram.percentile outcome.Runner.update_blocking 99.);
      ]
  in
  run_policy Policy.Manual;
  run_policy (Policy.Periodic 0.25);
  run_policy (Policy.Periodic 0.05);
  run_policy (Policy.Every_n_updates 50);
  run_policy (Policy.Divergence 2000.);
  Table.to_string table
  ^ notes
      [
        "";
        "Shape check (§8): user-transaction latencies are statistically";
        "indistinguishable whether advancement never runs or runs";
        "continuously — the advancement traffic (notifications and counter";
        "polls) shares the network but no user transaction ever waits on it.";
      ]

(* --------------------------------------------------------------- E8 *)

let run_e8 ~quick =
  let nodes = 4 in
  (* The paper: the delay "is usually set conservatively high" — we sweep
     from reckless (0) to conservative (a full period). *)
  let delays = if quick then [ 0.0; 0.1 ] else [ 0.0; 0.005; 0.02; 0.05; 0.1 ] in
  let period = 0.5 in
  (* Bounded jitter, scaled so that (like a real deployment) the period is
     much longer than any single message: the worst-case straggler is a few
     tens of ms, so a "safe" manual delay must exceed that — while 3V needs
     no such tuning. *)
  let straggler_latency = Latency.Uniform (0.0005, 0.012) in
  let table =
    Table.create
      ~title:
        "E8: manual versioning — safety delay vs correctness and staleness \
         (§1)"
      ~columns:
        [
          "scheme"; "safety delay (s)"; "partial reads"; "mean staleness (ms)";
          "max staleness (ms)";
        ]
  in
  let gen =
    Workload.Hospital.generator
      {
        (Workload.Hospital.default ~nodes) with
        Workload.Hospital.arrival_rate = 800.;
        read_ratio = 0.4;
        patients = 25;
        visit_fanout = 3;
        post_delay = 0.08;
      }
  in
  let setup =
    {
      Runner.default_setup with
      Runner.seed = 91;
      duration = (if quick then 2.0 else 6.0);
      settle = 4.0;
    }
  in
  List.iter
    (fun safety_delay ->
      let outcome =
        drive_manual ~seed:91 ~nodes ~period ~safety_delay
          ~latency:straggler_latency gen setup
      in
      let atom = Runner.atomicity outcome in
      let stale = Runner.staleness outcome in
      Table.add_row table
        [
          "manual";
          Table.cell_f safety_delay;
          Table.cell_i atom.Checker.Atomicity.partial_reads;
          ms stale.Checker.Staleness.mean_lag;
          ms stale.Checker.Staleness.max_lag;
        ])
    delays;
  let add_3v period =
    let o3v, _ =
      drive_3v ~seed:91 ~nodes ~policy:(Policy.Periodic period)
        ~latency:straggler_latency gen setup
    in
    let atom = Runner.atomicity o3v in
    let stale = Runner.staleness o3v in
    Table.add_row table
      [
        Printf.sprintf "3v (periodic %gs)" period;
        "n/a";
        Table.cell_i atom.Checker.Atomicity.partial_reads;
        ms stale.Checker.Staleness.mean_lag;
        ms stale.Checker.Staleness.max_lag;
      ]
  in
  add_3v period;
  add_3v 0.05;
  Table.to_string table
  ^ notes
      [
        "";
        "Shape check (§1): with a small safety delay, manual versioning";
        "returns partial charges (incorrect); correctness needs a delay";
        "sized to the worst-case straggler, which piles staleness on top of";
        "the period. 3V is always correct with no delay to tune, and";
        "because advancement is free it can simply run shorter periods";
        "(last row) for much fresher reads than any safe manual setting.";
      ]

(* --------------------------------------------------------------- E9 *)

(* The paper's asynchrony claim has a cost side: the advancement exchanges
   notifications, acks, counter polls and GC notices. E9 measures that
   traffic as a fraction of all remote messages, across advancement
   frequencies — it should stay small and independent of transaction rate. *)
let run_e9 ~quick =
  let nodes = 6 in
  let table =
    Table.create
      ~title:"E9: message cost of asynchronous advancement"
      ~columns:
        [
          "policy"; "advancements"; "remote msgs"; "msgs/txn";
          "advancement msgs"; "overhead";
        ]
  in
  let gen =
    Workload.Call_recording.generator
      {
        (Workload.Call_recording.default ~nodes) with
        Workload.Call_recording.arrival_rate = 800.;
      }
  in
  let setup =
    {
      Runner.default_setup with
      Runner.seed = 141;
      duration = (if quick then 1.0 else 4.0);
      settle = 3.0;
    }
  in
  let run_policy policy =
    let outcome, engine = drive_3v ~seed:141 ~nodes ~policy gen setup in
    ( outcome.Runner.committed,
      Counter_set.get outcome.Runner.stats "net.remote_messages",
      Engine.advancements_completed engine )
  in
  let base_committed, base_msgs, _ = run_policy Policy.Manual in
  Table.add_row table
    [
      "manual (none)"; "0"; Table.cell_i base_msgs;
      Printf.sprintf "%.2f" (float_of_int base_msgs /. float_of_int base_committed);
      "0"; "0.0%";
    ];
  List.iter
    (fun period ->
      let committed, msgs, advs = run_policy (Policy.Periodic period) in
      let extra = msgs - base_msgs in
      Table.add_row table
        [
          Printf.sprintf "periodic %gs" period;
          Table.cell_i advs;
          Table.cell_i msgs;
          Printf.sprintf "%.2f" (float_of_int msgs /. float_of_int committed);
          Table.cell_i extra;
          Table.cell_pct extra msgs;
        ])
    (if quick then [ 0.2 ] else [ 0.5; 0.2; 0.05 ]);
  Table.to_string table
  ^ notes
      [
        "";
        "Shape check: advancement costs a fixed ~90 messages per round";
        "(notify/ack, two quiescence phases of counter polls, GC + ack) —";
        "independent of the transaction rate, so its share shrinks as the";
        "system gets busier and is negligible at realistic frequencies";
        "(the paper's 'every hour' would be ~0.001%). Even at the absurd";
        "20-advancements-per-second point none of this traffic is on any";
        "user transaction's critical path (E7).";
      ]

(* -------------------------------------------------------------- E10 *)

(* The sharpest form of the §8 no-remote-delay claim: freeze one node for a
   full second mid-run. Transactions that never touch the frozen node must
   be completely unaffected under 3V — even though an advancement stalls
   mid-phase behind the frozen node's acks — while under global 2PC the
   freeze cascades: multi-node transactions stuck on the frozen node hold
   locks at healthy nodes, delaying (and deadlock-aborting) transactions
   that never go near it. *)
let run_e10 ~quick =
  let nodes = 4 in
  let outage_start = 1.0 and outage = 1.0 in
  let paused_node = nodes - 1 in
  let duration = if quick then 2.5 else 4.0 in
  (* Synthetic mix so that reads, like updates, touch only two nodes —
     otherwise every read would visit the frozen node and there would be no
     bystander reads to measure. *)
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 600.;
        read_ratio = 0.25;
        fanout = 2;
        keys_per_node = 20;
        zipf_s = 0.7;
      }
  in
  let setup =
    { Runner.default_setup with Runner.seed = 151; duration; settle = 4.0 }
  in
  let table =
    Table.create
      ~title:
        "E10: one node frozen for 1s — impact on transactions that never \
         touch it"
      ~columns:
        [
          "engine"; "outage"; "bystander txns"; "committed"; "read p99 (ms)";
          "upd-block p99 (ms)"; "peak in-flight"; "unfinished";
        ]
  in
  let add_row name ~outage_on (outcome : Runner.outcome) =
    (* Bystanders: submitted during the outage window, never visiting the
       paused node. *)
    let read_h = Histogram.create () and upd_h = Histogram.create () in
    let total = ref 0 and committed = ref 0 in
    List.iter
      (fun ((spec : Spec.t), (res : Result.t)) ->
        let in_window =
          res.Result.submit_time >= outage_start
          && res.Result.submit_time <= outage_start +. outage
        in
        let avoids = not (List.mem paused_node (Spec.nodes spec)) in
        if in_window && avoids then begin
          incr total;
          if Result.committed res then incr committed;
          match spec.Spec.kind with
          | Spec.Read_only -> Histogram.add read_h (Result.latency res)
          | Spec.Commuting | Spec.Non_commuting ->
              Histogram.add upd_h (Result.blocking_latency res)
        end)
      outcome.Runner.history;
    Table.add_row table
      [
        name;
        (if outage_on then "1s" else "none");
        Table.cell_i !total;
        Table.cell_i !committed;
        ms (Histogram.percentile read_h 99.);
        ms (Histogram.percentile upd_h 99.);
        Table.cell_f (Stats.Series.max_y outcome.Runner.in_flight);
        Table.cell_i outcome.Runner.unfinished;
      ]
  in
  (* 3V with and without the outage. *)
  let run_3v_case ~outage_on =
    let sim = Sim.create ~seed:151 () in
    let cfg =
      {
        (Engine.default_config ~nodes) with
        Engine.latency = Latency.Exponential 0.003;
        think_time = 0.0005;
        policy = Policy.Periodic 0.2;
      }
    in
    let engine = Engine.create sim cfg () in
    if outage_on then
      Engine.inject_pause engine ~node:paused_node ~at:outage_start
        ~duration:outage;
    let outcome = Runner.drive sim (Engine.packed engine) gen setup in
    add_row "3v" ~outage_on outcome
  in
  run_3v_case ~outage_on:false;
  run_3v_case ~outage_on:true;
  (* 2PC with and without the outage. *)
  let run_2pc_case ~outage_on =
    let sim = Sim.create ~seed:151 () in
    let cfg =
      {
        (Baselines.Global_2pc.default_config ~nodes) with
        Baselines.Global_2pc.latency = Latency.Exponential 0.003;
        think_time = 0.0005;
        deadlock_timeout = 0.3;
      }
    in
    let engine = Baselines.Global_2pc.create sim cfg in
    if outage_on then
      Baselines.Global_2pc.inject_pause engine ~node:paused_node
        ~at:outage_start ~duration:outage;
    let outcome =
      Runner.drive sim (Baselines.Global_2pc.packed engine) gen setup
    in
    add_row "global-2pc" ~outage_on outcome
  in
  run_2pc_case ~outage_on:false;
  run_2pc_case ~outage_on:true;
  (* One in-flight timeline under the outage makes the backlog visible:
     it balloons while the node is frozen and drains right after. *)
  let timeline =
    let sim = Sim.create ~seed:151 () in
    let cfg =
      {
        (Engine.default_config ~nodes) with
        Engine.latency = Latency.Exponential 0.003;
        think_time = 0.0005;
        policy = Policy.Periodic 0.2;
      }
    in
    let engine = Engine.create sim cfg () in
    Engine.inject_pause engine ~node:paused_node ~at:outage_start
      ~duration:outage;
    let outcome = Runner.drive sim (Engine.packed engine) gen setup in
    Stats.Series.sparkline outcome.Runner.in_flight ~buckets:60
  in
  Table.to_string table
  ^ Printf.sprintf "\n3v in-flight transactions over time (outage at %gs):\n[%s]\n"
      outage_start timeline
  ^ notes
      [
        "";
        "Shape check (§8): under 3V, bystander transactions — submitted";
        "during the outage, never visiting the frozen node — keep exactly";
        "their no-outage latency profile, even though a version advancement";
        "is stalled mid-phase waiting for the frozen node. Under global";
        "2PC, transactions stuck on the frozen node keep exclusive locks";
        "at healthy nodes, so bystanders that share a hot patient block or";
        "abort: the outage spreads through the lock graph.";
      ]

(* --------------------------------------------------------------- E11 *)

(* E11: uniform message loss. With the reliable channel on (per-link
   sequence numbers, acks, timeout retransmission, receive-side dedup) the
   protocol must stay correct and keep completing advancements under loss
   — and because no user transaction ever waits for a remote event (§8),
   user-blocking latency must keep its lossless profile. *)
let run_e11 ~quick =
  let nodes = 4 in
  let duration = if quick then 1.5 else 3.0 in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 400.;
        read_ratio = 0.25;
        fanout = 2;
        keys_per_node = 20;
        zipf_s = 0.7;
      }
  in
  let setup =
    { Runner.default_setup with Runner.seed = 161; duration; settle = 6.0 }
  in
  let table =
    Table.create
      ~title:
        "E11: uniform message loss — retransmission keeps 3V correct and \
         user latency flat"
      ~columns:
        [
          "loss"; "committed"; "advancements"; "partial reads"; "max versions";
          "upd-block p99 (ms)"; "read-block p99 (ms)"; "retransmits"; "drops";
          "unfinished";
        ]
  in
  let baseline = ref 1. in
  let run_case ~drop =
    let plan =
      if drop = 0. then Fault.Plan.none
      else
        Fault.Plan.make ~seed:1611
          ~rules:(Fault.Plan.uniform_loss ~dup:0.01 ~drop ())
          ()
    in
    let outcome, engine =
      drive_3v ~seed:161 ~nodes ~policy:(Policy.Periodic 0.2)
        ~cfg_f:(fun c ->
          { c with Engine.reliable_channel = true; retransmit_timeout = 0.02 })
        ~plan gen setup
    in
    let atom = Runner.atomicity outcome in
    let p99 = Histogram.percentile outcome.Runner.update_blocking 99. in
    if drop = 0. then baseline := Float.max p99 1e-9;
    Table.add_row table
      [
        Printf.sprintf "%g%%" (100. *. drop);
        Table.cell_i outcome.Runner.committed;
        Table.cell_i (Engine.advancements_completed engine);
        Table.cell_i atom.Checker.Atomicity.partial_reads;
        Table.cell_i (Engine.max_versions_ever engine);
        Printf.sprintf "%s (x%.2f)" (ms p99) (p99 /. !baseline);
        ms (Histogram.percentile outcome.Runner.read_blocking 99.);
        Table.cell_i
          (Counter_set.get outcome.Runner.stats "net.retransmissions");
        Table.cell_i (Counter_set.get outcome.Runner.stats "fault.drops");
        Table.cell_i outcome.Runner.unfinished;
      ]
  in
  List.iter
    (fun drop -> run_case ~drop)
    (if quick then [ 0.; 0.05 ] else [ 0.; 0.01; 0.05; 0.1 ]);
  Table.to_string table
  ^ notes
      [
        "";
        "Shape check: at every loss rate the history stays anomaly-free,";
        "advancement keeps completing (lost phase messages and poll replies";
        "are retransmitted), items never exceed three versions, and the";
        "user-blocking p99 stays at the lossless profile (x1.0-ish): user";
        "transactions block only on local work, so loss costs bandwidth";
        "(retransmits), never user latency. The fault RNG is separate from";
        "the workload RNG, so rows differ only in the injected faults.";
      ]

(* --------------------------------------------------------------- E12 *)

(* Order-independent history digest for the byte-identical-replay check:
   same set of (txn, outcome, timing) tuples => same digest. The per-tuple
   digest is a structural FNV-style mix (not [Hashtbl.hash], whose value
   depends on the runtime's hash layout), so the digest is stable across
   compiler versions; the outer [lxor] fold keeps it order-independent. *)
let history_digest (outcome : Runner.outcome) =
  let mix acc n = ((acc * 0x01000193) + n) land 0x3FFFFFFF in
  let mix_float acc f =
    let bits = Int64.bits_of_float f in
    let lo = Int64.to_int (Int64.logand bits 0xFFFFFFFFL) in
    let hi = Int64.to_int (Int64.shift_right_logical bits 32) in
    mix (mix acc lo) hi
  in
  List.fold_left
    (fun acc ((spec : Spec.t), (res : Txn.Result.t)) ->
      let h =
        mix 0x811C9DC5 spec.Spec.id
        |> fun h ->
        mix h (if Result.committed res then 1 else 0)
        |> fun h ->
        mix_float h res.Result.submit_time
        |> fun h ->
        mix_float h (Result.latency res)
        |> fun h -> mix_float h (Result.blocking_latency res)
      in
      acc lxor h)
    0 outcome.Runner.history

(* E12: a node crashes mid-advancement and restarts one second later,
   recovering its volatile version registers from durable state (store GC
   floor + counters) and catching up via the paper's late-node rule. Under
   3V, bystander transactions — submitted during the outage, never
   touching the crashed node — are unaffected; under Global-2PC the crash
   spreads through the lock graph and there is no recovery path. *)
let run_e12 ~quick =
  let nodes = 4 in
  let crashed = nodes - 1 in
  let crash_at = 1.0 and restart_at = 2.0 in
  let duration = if quick then 2.5 else 4.0 in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 400.;
        read_ratio = 0.25;
        fanout = 2;
        keys_per_node = 20;
        zipf_s = 0.7;
      }
  in
  let setup =
    { Runner.default_setup with Runner.seed = 163; duration; settle = 6.0 }
  in
  let plan_crash =
    Fault.Plan.make ~seed:1212
      ~crashes:[ Fault.Plan.crash ~node:crashed ~at:crash_at ~restart:restart_at ]
      ()
  in
  let table =
    Table.create
      ~title:
        "E12: node crash during advancement — 3V recovery vs Global-2PC"
      ~columns:
        [
          "engine"; "crash"; "bystander txns"; "committed"; "read p99 (ms)";
          "upd-block p99 (ms)"; "unfinished";
        ]
  in
  let add_row name ~crash_on (outcome : Runner.outcome) =
    (* Bystanders: submitted while the node is down, never visiting it. *)
    let read_h = Histogram.create () and upd_h = Histogram.create () in
    let total = ref 0 and committed = ref 0 in
    List.iter
      (fun ((spec : Spec.t), (res : Txn.Result.t)) ->
        let in_window =
          res.Result.submit_time >= crash_at
          && res.Result.submit_time <= restart_at
        in
        let avoids = not (List.mem crashed (Spec.nodes spec)) in
        if in_window && avoids then begin
          incr total;
          if Result.committed res then incr committed;
          match spec.Spec.kind with
          | Spec.Read_only -> Histogram.add read_h (Result.latency res)
          | Spec.Commuting | Spec.Non_commuting ->
              Histogram.add upd_h (Result.blocking_latency res)
        end)
      outcome.Runner.history;
    Table.add_row table
      [
        name;
        (if crash_on then "1s" else "none");
        Table.cell_i !total;
        Table.cell_i !committed;
        ms (Histogram.percentile read_h 99.);
        ms (Histogram.percentile upd_h 99.);
        Table.cell_i outcome.Runner.unfinished;
      ]
  in
  let recovery_note = ref "" in
  let run_3v_case ~crash_on ~emit =
    let sim = Sim.create ~seed:163 () in
    let cfg =
      {
        (Engine.default_config ~nodes) with
        Engine.latency = Latency.Exponential 0.003;
        think_time = 0.0005;
        policy = Policy.Manual;
        reliable_channel = true;
        retransmit_timeout = 0.02;
      }
    in
    let plan = if crash_on then plan_crash else Fault.Plan.none in
    let faults = Fault.Injector.create sim plan in
    let engine = Engine.create sim cfg ~faults () in
    (* Trigger an advancement just before the crash so the crash lands
       mid-phase, with the crashed node holding unacknowledged protocol
       state. *)
    let adv = ref None in
    Sim.schedule sim ~delay:0.95 (fun () -> adv := Some (Engine.advance engine));
    let outcome = Runner.drive sim (Engine.packed engine) gen setup in
    if emit then add_row "3v" ~crash_on outcome;
    if crash_on && emit then begin
      let filled =
        match !adv with Some iv -> Simul.Ivar.is_full iv | None -> false
      in
      recovery_note :=
        Printf.sprintf
          "3v crash case: advancement started at 0.95s %s; crashed node n%d \
           ended at vu=%d vr=%d, healthy n0 at vu=%d vr=%d."
          (if filled then "completed despite the crash" else "NEVER completed")
          crashed
          (Engine.update_version engine ~node:crashed)
          (Engine.read_version engine ~node:crashed)
          (Engine.update_version engine ~node:0)
          (Engine.read_version engine ~node:0)
    end;
    outcome
  in
  ignore (run_3v_case ~crash_on:false ~emit:true);
  let o1 = run_3v_case ~crash_on:true ~emit:true in
  let o2 = run_3v_case ~crash_on:true ~emit:false in
  let replay_ok = history_digest o1 = history_digest o2 in
  let run_2pc_case ~crash_on =
    let sim = Sim.create ~seed:163 () in
    let cfg =
      {
        (Baselines.Global_2pc.default_config ~nodes) with
        Baselines.Global_2pc.latency = Latency.Exponential 0.003;
        think_time = 0.0005;
        deadlock_timeout = 0.3;
      }
    in
    let plan = if crash_on then plan_crash else Fault.Plan.none in
    let faults = Fault.Injector.create sim plan in
    let engine = Baselines.Global_2pc.create ~faults sim cfg in
    let outcome =
      Runner.drive sim (Baselines.Global_2pc.packed engine) gen setup
    in
    add_row "global-2pc" ~crash_on outcome
  in
  run_2pc_case ~crash_on:false;
  run_2pc_case ~crash_on:true;
  Table.to_string table
  ^ notes
      [
        "";
        !recovery_note;
        Printf.sprintf
          "replay determinism: two runs with the same seeds produced %s \
           histories."
          (if replay_ok then "identical" else "DIFFERENT");
        "";
        "Shape check: under 3V the crashed node loses its volatile vu/vr,";
        "recovers them from durable state (store GC floor + counters) at";
        "restart, and the retransmitted phase messages plus the late-node";
        "rule bring it back in sync — the advancement still completes and";
        "bystanders keep their no-crash latency profile. Global-2PC has no";
        "recovery path: transactions touching the crashed node hold locks";
        "at healthy nodes, so the crash spreads and work is lost.";
      ]

(* --------------------------------------------------------------- E13 *)

(* E13: coordinator fail-stop crash in each of the four advancement phases.
   A reference run's write-ahead log supplies the phase-entry times, so each
   case's crash provably lands inside its target phase (the runs are
   byte-identical up to the crash instant). The restarted coordinator
   replays its WAL, bumps its poll epoch and re-drives the in-flight phase;
   node-side idempotence absorbs the re-driven messages. A final case wedges
   phase 1 with a scripted drop and no channel retransmission — only the
   stall watchdog's re-broadcast can resolve it. *)
let run_e13 ~quick =
  let nodes = 4 in
  let duration = if quick then 2.0 else 3.0 in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 400.;
        read_ratio = 0.25;
        fanout = 2;
        keys_per_node = 20;
        zipf_s = 0.7;
      }
  in
  let setup =
    { Runner.default_setup with Runner.seed = 171; duration; settle = 6.0 }
  in
  let run_case ?(phase_deadline = infinity) ?(retransmit = true)
      ?(plan = Fault.Plan.none) () =
    let sim = Sim.create ~seed:171 () in
    let cfg =
      {
        (Engine.default_config ~nodes) with
        Engine.latency = Latency.Exponential 0.003;
        think_time = 0.0005;
        policy = Policy.Manual;
        reliable_channel = true;
        retransmit;
        retransmit_timeout = 0.02;
        phase_deadline;
      }
    in
    let faults = Fault.Injector.create sim plan in
    let engine = Engine.create sim cfg ~faults () in
    let adv = ref None in
    Sim.schedule sim ~delay:0.95 (fun () -> adv := Some (Engine.advance engine));
    let outcome = Runner.drive sim (Engine.packed engine) gen setup in
    let completed =
      match !adv with Some iv -> Simul.Ivar.is_full iv | None -> false
    in
    (outcome, engine, completed)
  in
  (* Reference run: no faults; its WAL gives the phase-entry times. *)
  let _, ref_engine, _ = run_case () in
  let entry k =
    match
      List.find_opt
        (fun (a, p, _) -> a = 1 && Threev.Coord_log.phase_number p = k)
        (Threev.Coord_log.phase_times (Engine.coord_log ref_engine))
    with
    | Some (_, _, tm) -> tm
    | None -> failwith "E13: reference run missing a phase entry"
  in
  (* Inside phase k: midway to the next phase's entry. Phase 4's entry is
     logged after its quiescence wait (see Coord_log), so land in the
     gc-ack exchange just after it. *)
  let crash_time k =
    if k < 4 then (entry k +. entry (k + 1)) /. 2. else entry 4 +. 0.002
  in
  let table =
    Table.create
      ~title:"E13: coordinator crash tolerance — WAL resume in every phase"
      ~columns:
        [
          "case"; "crash at"; "advancements"; "recoveries"; "stalls";
          "committed"; "unfinished"; "partial reads"; "max vers";
        ]
  in
  let add_row name ~crash_at (outcome : Runner.outcome) engine completed =
    let atom = Runner.atomicity outcome in
    Table.add_row table
      [
        name;
        (match crash_at with Some a -> Printf.sprintf "%.3fs" a | None -> "-");
        Printf.sprintf "%d%s"
          (Engine.advancements_completed engine)
          (if completed then "" else " (wedged)");
        Table.cell_i
          (Counter_set.get outcome.Runner.stats "proto.coord_recoveries");
        Table.cell_i
          (Counter_set.get outcome.Runner.stats "proto.phase_stalled");
        Table.cell_i outcome.Runner.committed;
        Table.cell_i outcome.Runner.unfinished;
        Table.cell_i atom.Checker.Atomicity.partial_reads;
        Table.cell_i (Engine.max_versions_ever engine);
      ]
  in
  let o0, e0, c0 = run_case () in
  add_row "no crash" ~crash_at:None o0 e0 c0;
  let crash_outcomes =
    List.map
      (fun k ->
        let at = crash_time k in
        let plan =
          Fault.Plan.make ~seed:1713
            ~coord_crashes:[ Fault.Plan.coord_crash ~at ~restart:(at +. 0.3) ]
            ()
        in
        let o, e, c = run_case ~plan () in
        add_row (Printf.sprintf "crash in phase %d" k) ~crash_at:(Some at) o e c;
        (k, o, e, c))
      [ 1; 2; 3; 4 ]
  in
  (* Replay determinism: re-run the phase-2 case with the same seeds. *)
  let replay_ok =
    let at = crash_time 2 in
    let plan =
      Fault.Plan.make ~seed:1713
        ~coord_crashes:[ Fault.Plan.coord_crash ~at ~restart:(at +. 0.3) ]
        ()
    in
    let o2, _, _ = run_case ~plan () in
    let _, o1, _, _ = List.nth crash_outcomes 1 in
    history_digest o1 = history_digest o2
  in
  (* Watchdog: drop the phase-1 broadcast to n0, turn channel retransmission
     off (ablation A4's wedge), and let the per-phase deadline repair it. *)
  let wo, we, wc =
    run_case ~phase_deadline:0.06 ~retransmit:false
      ~plan:
        (Fault.Plan.make ~seed:1714
           ~rules:
             [ Fault.Plan.rule ~src:nodes ~dst:0 ~from_:0.9 ~nth:1 Fault.Plan.Drop ]
           ())
      ()
  in
  add_row "stalled phase 1 + watchdog" ~crash_at:None wo we wc;
  (* Baseline comparisons through the same inject_coord_crash surface. *)
  let twopc_row =
    let sim = Sim.create ~seed:171 () in
    let cfg =
      {
        (Baselines.Global_2pc.default_config ~nodes) with
        Baselines.Global_2pc.latency = Latency.Exponential 0.003;
        think_time = 0.0005;
        deadlock_timeout = 0.3;
      }
    in
    let engine = Baselines.Global_2pc.create sim cfg in
    let at = crash_time 2 in
    Baselines.Global_2pc.inject_coord_crash engine ~at ~restart:(at +. 0.3);
    let outcome =
      Runner.drive sim (Baselines.Global_2pc.packed engine) gen setup
    in
    Printf.sprintf
      "global-2pc under the same crash window (its coordination site, node \
       0): %d committed, %d unfinished — no WAL, no re-drive; work rooted \
       at the crashed site is simply lost."
      outcome.Runner.committed outcome.Runner.unfinished
  in
  let manual_row =
    let sim = Sim.create ~seed:171 () in
    let cfg =
      {
        (Baselines.Manual_versioning.default_config ~nodes) with
        Baselines.Manual_versioning.period = 0.5;
        safety_delay = 0.2;
      }
    in
    let m = Baselines.Manual_versioning.create sim cfg in
    let healthy = Baselines.Manual_versioning.read_version_at m ~now:2.9 in
    Baselines.Manual_versioning.inject_coord_crash m ~at:1.0 ~restart:3.0;
    let frozen = Baselines.Manual_versioning.read_version_at m ~now:2.9 in
    let after = Baselines.Manual_versioning.read_version_at m ~now:3.0 in
    Printf.sprintf
      "manual versioning, publisher down [1.0s, 3.0s): at 2.9s reads still \
       use version %d (vs %d had the publisher stayed up) — frozen for the \
       whole window, snapping to %d at restart (staleness grows linearly, \
       unbounded by any protocol)."
      frozen healthy after
  in
  let all_recovered =
    List.for_all
      (fun (_, o, _, c) ->
        c && o.Runner.unfinished = 0
        && (Runner.atomicity o).Checker.Atomicity.partial_reads = 0)
      crash_outcomes
  in
  Table.to_string table
  ^ notes
      [
        "";
        Printf.sprintf
          "crash-phase sweep: advancement %s after every single-phase crash \
           (restart +0.3s), with zero checker anomalies."
          (if all_recovered then "completed" else "FAILED to complete");
        Printf.sprintf
          "replay determinism: two phase-2-crash runs with the same seeds \
           produced %s histories."
          (if replay_ok then "identical" else "DIFFERENT");
        Printf.sprintf
          "watchdog: %d stall(s) recorded; the re-broadcast resolved a \
           wedge that channel retransmission (off) could not."
          (Counter_set.get wo.Runner.stats "proto.phase_stalled");
        twopc_row;
        manual_row;
        "";
        "Shape check: the WAL records every phase entry before its first";
        "message, nodes treat re-driven phase messages idempotently, and";
        "counter polls are namespaced by restart epoch — so a coordinator";
        "crash in any phase costs only the outage window, never correctness.";
      ]

(* --------------------------------------------------------------- E14 *)

(* E14: k-way replication under data-node crashes. Six nodes in two
   replica groups of three; a reference run's WAL supplies the
   phase-entry times so the crash of k-1 replicas of group 0 provably
   lands mid-advancement (inside phase 2's quiescence wait). The quorum
   poll excuses the crashed replicas' mirror traffic, reads fail over to
   the surviving replica, and the recovered replicas serve reads again
   only after the readable-after-recovery gate reopens. All five checkers
   certify the crash history; Global-2PC under the same crash plan
   strands the same workload (no failover target exists). *)
let run_e14 ~quick =
  let nodes = 6 and k = 3 in
  let duration = if quick then 2.0 else 3.0 in
  let crash_keep = 1 in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 400.;
        read_ratio = 0.25;
        fanout = 2;
        keys_per_node = 20;
        zipf_s = 0.7;
      }
  in
  let setup =
    { Runner.default_setup with Runner.seed = 191; duration; settle = 6.0 }
  in
  let run_case ?(replicas = k) ?(plan = Fault.Plan.none) () =
    let sim = Sim.create ~seed:191 () in
    let cfg =
      {
        (Engine.default_config ~nodes) with
        Engine.latency = Latency.Exponential 0.003;
        think_time = 0.0005;
        policy = Policy.Manual;
        reliable_channel = true;
        retransmit_timeout = 0.02;
        replicas;
      }
    in
    let faults = Fault.Injector.create sim plan in
    let engine = Engine.create sim cfg ~faults () in
    let adv = ref None in
    Sim.schedule sim ~delay:0.95 (fun () -> adv := Some (Engine.advance engine));
    let outcome = Runner.drive sim (Engine.packed engine) gen setup in
    (* Publish everything so the settled store replays the history. *)
    let a1 = Engine.advance engine and a2 = Engine.advance engine in
    ignore (Sim.run sim ~until:(Sim.now sim +. 20.) ());
    ignore (Simul.Ivar.is_full a1 && Simul.Ivar.is_full a2);
    let completed =
      match !adv with Some iv -> Simul.Ivar.is_full iv | None -> false
    in
    (outcome, engine, completed)
  in
  (* Reference run: replicated, fault-free; its WAL gives phase times. *)
  let _, ref_engine, _ = run_case () in
  let crash_at =
    let entry n =
      match
        List.find_opt
          (fun (a, p, _) -> a = 1 && Threev.Coord_log.phase_number p = n)
          (Threev.Coord_log.phase_times (Engine.coord_log ref_engine))
      with
      | Some (_, _, tm) -> tm
      | None -> failwith "E14: reference run missing a phase entry"
    in
    (entry 2 +. entry 3) /. 2.
  in
  let restart_at = crash_at +. 0.5 in
  let crash_plan =
    Fault.Plan.make ~seed:1911
      ~crashes:
        (Fault.Plan.crash_replicas
           ~members:(Repl.Placement.members (Engine.placement ref_engine) 0)
           ~keep:crash_keep ~at:crash_at ~restart:restart_at)
      ()
  in
  (* All five checkers over a finished run: the 1SR certifier, atomic
     visibility, the exact version-read oracle, final-store replay, and
     the staleness measurement. *)
  let certify (outcome : Runner.outcome) engine =
    let history = outcome.Runner.history in
    let srz = Checker.Serializability.certify history in
    let atom = Checker.Atomicity.check history in
    let vreads = Checker.Version_reads.check history in
    let lookup key =
      let rec scan node =
        if node < 0 then None
        else
          match
            Mvstore.read_visible (Engine.store engine ~node) ~key
              ~version:max_int
          with
          | Some (_, v) -> Some v
          | None -> scan (node - 1)
      in
      scan (nodes - 1)
    in
    let replay = Checker.Replay.check history ~lookup in
    let stale = Checker.Staleness.measure history in
    let anomalies =
      (if Checker.Serializability.serializable srz then 0 else 1)
      + srz.Checker.Serializability.unknown_count
      + atom.Checker.Atomicity.partial_reads
      + atom.Checker.Atomicity.dirty_reads
      + vreads.Checker.Version_reads.violation_count
      + replay.Checker.Replay.mismatch_count
    in
    (anomalies, stale)
  in
  let table =
    Table.create
      ~title:
        "E14: k-way replication — quorum advancement, failover, recovery"
      ~columns:
        [
          "case"; "advancements"; "failovers"; "mirrors"; "recoveries";
          "committed"; "unfinished"; "anomalies"; "max lag (ms)";
        ]
  in
  let add_row name (outcome : Runner.outcome) engine completed =
    let anomalies, stale = certify outcome engine in
    Table.add_row table
      [
        name;
        Printf.sprintf "%d%s"
          (Engine.advancements_completed engine)
          (if completed then "" else " (wedged)");
        Table.cell_i (Counter_set.get outcome.Runner.stats "repl.failovers");
        Table.cell_i (Counter_set.get outcome.Runner.stats "repl.mirrors");
        Table.cell_i (Counter_set.get outcome.Runner.stats "repl.recoveries");
        Table.cell_i outcome.Runner.committed;
        Table.cell_i outcome.Runner.unfinished;
        Table.cell_i anomalies;
        ms stale.Checker.Staleness.max_lag;
      ];
    (anomalies, stale)
  in
  let o1, e1, c1 = run_case ~replicas:1 () in
  ignore (add_row "k=1, fault-free" o1 e1 c1);
  let o3, e3, c3 = run_case () in
  let _, stale_base = add_row "k=3, fault-free" o3 e3 c3 in
  let oc, ec, cc = run_case ~plan:crash_plan () in
  let crash_anoms, stale_crash =
    add_row
      (Printf.sprintf "k=3, %d replicas down mid-advancement" (k - crash_keep))
      oc ec cc
  in
  (* Replay determinism: the crash case must reproduce bit-for-bit. *)
  let oc2, _, _ = run_case ~plan:crash_plan () in
  let replay_ok = history_digest oc = history_digest oc2 in
  (* Staleness stays bounded: the crash can add at most the outage window
     (plus advancement/settle slack) to the worst-case read lag. *)
  let lag_bound =
    stale_base.Checker.Staleness.max_lag +. (restart_at -. crash_at) +. 1.0
  in
  let lag_bounded = stale_crash.Checker.Staleness.max_lag <= lag_bound in
  (* Global-2PC under the same data-node crash plan: no replica group to
     fail over to, so work touching the crashed nodes strands. *)
  let twopc_row =
    let sim = Sim.create ~seed:191 () in
    let cfg =
      {
        (Baselines.Global_2pc.default_config ~nodes) with
        Baselines.Global_2pc.latency = Latency.Exponential 0.003;
        think_time = 0.0005;
        deadlock_timeout = 0.3;
      }
    in
    let faults = Fault.Injector.create sim crash_plan in
    let engine = Baselines.Global_2pc.create ~faults sim cfg in
    let outcome =
      Runner.drive sim (Baselines.Global_2pc.packed engine) gen setup
    in
    Printf.sprintf
      "global-2pc under the same crash plan: %d committed, %d unfinished — \
       the crashed nodes' locks and in-flight votes strand work at healthy \
       nodes; there is no replica to fail over to."
      outcome.Runner.committed outcome.Runner.unfinished
  in
  let manual_row =
    let sim = Sim.create ~seed:191 () in
    let cfg =
      {
        (Baselines.Manual_versioning.default_config ~nodes) with
        Baselines.Manual_versioning.period = 0.5;
        safety_delay = 0.2;
      }
    in
    let m = Baselines.Manual_versioning.create sim cfg in
    Baselines.Manual_versioning.inject_coord_crash m ~at:crash_at
      ~restart:(crash_at +. 2.0);
    let frozen =
      Baselines.Manual_versioning.read_version_at m ~now:(crash_at +. 1.9)
    in
    let healthy =
      let m2 =
        Baselines.Manual_versioning.create (Sim.create ~seed:191 ()) cfg
      in
      Baselines.Manual_versioning.read_version_at m2 ~now:(crash_at +. 1.9)
    in
    Printf.sprintf
      "manual versioning has no failover either: with its version publisher \
       down for 2s, reads still use version %d at the end of the outage (vs \
       %d healthy) — staleness grows with the outage, unbounded by any \
       protocol."
      frozen healthy
  in
  Table.to_string table
  ^ notes
      [
        "";
        Printf.sprintf
          "quorum advancement: the mid-phase-2 crash of %d of %d replicas \
           (group 0, [%.3fs, %.3fs)) %s — the poll completed on the \
           surviving replica, deferring only mirror traffic owed to the \
           crashed ones."
          (k - crash_keep) k crash_at restart_at
          (if cc && Engine.advancements_completed ec >= 1 then
             "did not block version advancement"
           else "BLOCKED version advancement");
        Printf.sprintf
          "checkers: %d anomalies across 1SR certification, atomic \
           visibility, exact version reads and final-store replay%s."
          crash_anoms
          (if crash_anoms = 0 then " — crash history certifies clean"
           else " — VIOLATIONS");
        Printf.sprintf
          "read staleness stayed bounded: max lag %.1f ms under the crash \
           vs %.1f ms fault-free (bound: outage + slack = %.1f ms) — %s."
          (1000. *. stale_crash.Checker.Staleness.max_lag)
          (1000. *. stale_base.Checker.Staleness.max_lag)
          (1000. *. lag_bound)
          (if lag_bounded then "within bound" else "EXCEEDED")
        ;
        Printf.sprintf
          "replay determinism: two crash runs with the same seeds produced \
           %s histories."
          (if replay_ok then "identical" else "DIFFERENT");
        Printf.sprintf
          "recovery: %d replica recoveries; a recovered replica serves \
           reads again only after its catch-up backlog drains and a \
           quiescence round certifies its frontier version \
           (readable-after-recovery)."
          (Counter_set.get oc.Runner.stats "repl.recoveries");
        twopc_row;
        manual_row;
        "";
        "Shape check: commuting updates mirror to every live group member";
        "through the ordinary counter matrices, so quiescence (R = C)";
        "already waits for mirrors; the quorum rule only excuses counter";
        "traffic owed to crashed replicas, never genuine subtransactions.";
      ]

(* --------------------------------------------------------------- E15 *)

(* E15: oracle-free liveness. Same six-node, two-group k=3 shape as E14,
   but every liveness decision — read failover, quorum participation,
   watchdog excusal — comes from the heartbeat failure detector instead of
   the fault injector's ground truth. Four cases: fault-free reference
   (whose WAL places the crash), a real replica crash the detector has to
   notice, the acceptance shape — that crash compounded with a
   false-suspicion storm (heartbeat loss on a live node of the healthy
   group, protocol traffic untouched) — and a one-way partition that cuts
   a node's outbound links only. Safety obligations: (a) a
   falsely-suspected live node never breaks advancement — its late counter
   replies fold in idempotently and all five checkers stay clean; (b) an
   undetected outage degrades to the watchdog/retransmit path rather than
   wedging. *)
let run_e15 ~quick =
  let nodes = 6 and k = 3 in
  let duration = if quick then 2.0 else 3.0 in
  let crash_keep = 1 in
  let hb_period = 0.02 and hb_timeout = 0.08 in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 400.;
        read_ratio = 0.25;
        fanout = 2;
        keys_per_node = 20;
        zipf_s = 0.7;
      }
  in
  let setup =
    { Runner.default_setup with Runner.seed = 211; duration; settle = 6.0 }
  in
  let run_case ?(plan = Fault.Plan.none) () =
    let sim = Sim.create ~seed:211 () in
    let cfg =
      {
        (Engine.default_config ~nodes) with
        Engine.latency = Latency.Exponential 0.003;
        think_time = 0.0005;
        policy = Policy.Manual;
        reliable_channel = true;
        retransmit_timeout = 0.02;
        replicas = k;
        hb_period;
        hb_timeout;
        (* The watchdog is the degradation path for outages the detector
           has not (yet) noticed, so it stays armed. *)
        phase_deadline = 0.5;
      }
    in
    let faults = Fault.Injector.create sim plan in
    let engine = Engine.create sim cfg ~faults () in
    let adv = ref None in
    Sim.schedule sim ~delay:0.95 (fun () -> adv := Some (Engine.advance engine));
    let outcome = Runner.drive sim (Engine.packed engine) gen setup in
    let a1 = Engine.advance engine and a2 = Engine.advance engine in
    ignore (Sim.run sim ~until:(Sim.now sim +. 20.) ());
    ignore (Simul.Ivar.is_full a1 && Simul.Ivar.is_full a2);
    let completed =
      match !adv with Some iv -> Simul.Ivar.is_full iv | None -> false
    in
    (outcome, engine, completed)
  in
  (* Fault-free reference: its WAL supplies the phase-entry times so the
     crash provably lands inside phase 2's quiescence wait. *)
  let oref, ref_engine, cref = run_case () in
  let crash_at =
    let entry n =
      match
        List.find_opt
          (fun (a, p, _) -> a = 1 && Threev.Coord_log.phase_number p = n)
          (Threev.Coord_log.phase_times (Engine.coord_log ref_engine))
      with
      | Some (_, _, tm) -> tm
      | None -> failwith "E15: reference run missing a phase entry"
    in
    (entry 2 +. entry 3) /. 2.
  in
  let restart_at = crash_at +. 0.5 in
  let crashes =
    Fault.Plan.crash_replicas
      ~members:(Repl.Placement.members (Engine.placement ref_engine) 0)
      ~keep:crash_keep ~at:crash_at ~restart:restart_at
  in
  let crash_plan = Fault.Plan.make ~seed:2111 ~crashes () in
  (* The acceptance shape: the same real crash plus a heartbeat-loss storm
     on a live node of the {e healthy} group, overlapping the crash window
     — the detector now faces a real outage and a lie at the same time. *)
  let storm_node = k in
  let storm_plan =
    Fault.Plan.make ~seed:2111 ~crashes
      ~rules:
        (Fault.Plan.heartbeat_loss ~src:storm_node
           ~from_:(crash_at -. 0.1) ~until_:(restart_at +. 0.3) ())
      ()
  in
  (* One-way partition: one healthy-group node keeps hearing the cluster
     but is never heard (outbound-only cut, heartbeats included). *)
  let oneway_plan =
    Fault.Plan.make ~seed:2111
      ~rules:
        (Fault.Plan.partition_set ~universe:(nodes + 1) ~set:[ storm_node ]
           ~oneway:true ~from_:crash_at ~until_:(crash_at +. 0.3) ())
      ()
  in
  let certify (outcome : Runner.outcome) engine =
    let history = outcome.Runner.history in
    let srz = Checker.Serializability.certify history in
    let atom = Checker.Atomicity.check history in
    let vreads = Checker.Version_reads.check history in
    let lookup key =
      let rec scan node =
        if node < 0 then None
        else
          match
            Mvstore.read_visible (Engine.store engine ~node) ~key
              ~version:max_int
          with
          | Some (_, v) -> Some v
          | None -> scan (node - 1)
      in
      scan (nodes - 1)
    in
    let replay = Checker.Replay.check history ~lookup in
    let stale = Checker.Staleness.measure history in
    let anomalies =
      (if Checker.Serializability.serializable srz then 0 else 1)
      + srz.Checker.Serializability.unknown_count
      + atom.Checker.Atomicity.partial_reads
      + atom.Checker.Atomicity.dirty_reads
      + vreads.Checker.Version_reads.violation_count
      + replay.Checker.Replay.mismatch_count
    in
    (anomalies, stale)
  in
  let table =
    Table.create
      ~title:
        "E15: oracle-free liveness — heartbeat detection, suspicion, \
         watchdog"
      ~columns:
        [
          "case"; "advancements"; "suspicions"; "confirmed"; "recoveries";
          "failovers"; "committed"; "unfinished"; "anomalies";
          "max lag (ms)";
        ]
  in
  let add_row name (outcome : Runner.outcome) engine completed =
    let anomalies, stale = certify outcome engine in
    Table.add_row table
      [
        name;
        Printf.sprintf "%d%s"
          (Engine.advancements_completed engine)
          (if completed then "" else " (wedged)");
        Table.cell_i (Counter_set.get outcome.Runner.stats "fd.suspicions");
        Table.cell_i (Counter_set.get outcome.Runner.stats "fd.confirmed");
        Table.cell_i (Counter_set.get outcome.Runner.stats "fd.recoveries");
        Table.cell_i (Counter_set.get outcome.Runner.stats "repl.failovers");
        Table.cell_i outcome.Runner.committed;
        Table.cell_i outcome.Runner.unfinished;
        Table.cell_i anomalies;
        ms stale.Checker.Staleness.max_lag;
      ];
    (anomalies, stale)
  in
  let ref_anoms, _ = add_row "k=3, fd on, fault-free" oref ref_engine cref in
  let oc, ec, cc = run_case ~plan:crash_plan () in
  let crash_anoms, _ =
    add_row
      (Printf.sprintf "k=3, %d replicas down (detected)" (k - crash_keep))
      oc ec cc
  in
  let os, es, cs = run_case ~plan:storm_plan () in
  let storm_anoms, _ = add_row "k=3, crash + false-suspicion storm" os es cs in
  let op, ep, cp = run_case ~plan:oneway_plan () in
  let oneway_anoms, _ = add_row "k=3, one-way partition (outbound cut)" op ep cp in
  (* The storm run — real crash and a lied-about live node at once — must
     replay bit-for-bit. *)
  let os2, _, _ = run_case ~plan:storm_plan () in
  let replay_ok = history_digest os = history_digest os2 in
  let full_commit =
    os.Runner.unfinished = 0 && os.Runner.committed > 0
    && os.Runner.committed + os.Runner.aborted = os.Runner.submitted
  in
  Table.to_string table
  ^ notes
      [
        "";
        Printf.sprintf
          "liveness without the oracle: every routing, quorum and watchdog \
           decision above came from heartbeat suspicion (period %gs, base \
           horizon %gs); the fault plan is invisible to the protocol."
          hb_period hb_timeout;
        Printf.sprintf
          "real crash: the detector suspected the %d crashed replicas (%d \
           suspicions, %d escalated to confirmed-down before their restart \
           re-earned trust), advancement %s."
          (k - crash_keep)
          (Counter_set.get oc.Runner.stats "fd.suspicions")
          (Counter_set.get oc.Runner.stats "fd.confirmed")
          (if cc then "completed past the outage" else "WEDGED");
        Printf.sprintf
          "false-suspicion storm: node %d stayed alive while its heartbeats \
           were dropped; its late counter replies folded in idempotently — \
           %d committed, %d unfinished, %d anomalies across all five \
           checkers%s."
          storm_node os.Runner.committed os.Runner.unfinished storm_anoms
          (if storm_anoms = 0 && full_commit then
             " — the full workload commits clean (obligation a)"
           else " — VIOLATIONS");
        Printf.sprintf
          "one-way partition: outbound-only silence still earns suspicion \
           (%d suspicions) because evidence, not reachability, drives the \
           detector; %d anomalies."
          (Counter_set.get op.Runner.stats "fd.suspicions")
          oneway_anoms;
        Printf.sprintf
          "replay determinism: two storm runs with the same seeds produced \
           %s histories%s."
          (if replay_ok then "identical" else "DIFFERENT")
          (if replay_ok then " — the detector is deterministic from the \
                              sim clock" else "");
        Printf.sprintf
          "fault-free cost: %d heartbeats for %d suspicions — a quiet \
           detector is pure overhead, measured at ~%d messages/advancement \
           in BENCH_fd.json (fd-smoke gates it)."
          (Counter_set.get oref.Runner.stats "fd.heartbeats_sent")
          (Counter_set.get oref.Runner.stats "fd.suspicions")
          (let adv = max 1 (Engine.advancements_completed ref_engine) in
           Counter_set.get oref.Runner.stats "fd.heartbeats_sent" / adv);
        (if ref_anoms = 0 && crash_anoms = 0 && storm_anoms = 0
            && oneway_anoms = 0
         then "all four cases certify clean across all five checkers."
         else "CHECKER VIOLATIONS PRESENT — see anomaly column.");
        "";
        "Obligation (b) — an outage the detector cannot see (heartbeats";
        "fine, node dead) is exercised in test_fd: the watchdog's bounded";
        "resend plus the reliable channel's retransmission carry the";
        "advancement once the node restarts; nothing here waits on ground";
        "truth.";
      ]

(* A1: the two-wave stable-property check vs trusting a single matching
   poll. We count poll rounds (the cost) and unsound declarations caught by
   the oracle (the risk). *)
let run_a1 ~quick =
  let nodes = 4 in
  let table =
    Table.create
      ~title:"A1: quiescence detection — two-wave vs single matching poll"
      ~columns:
        [
          "mode"; "advancements"; "poll rounds"; "polls/advancement";
          "unsound declarations"; "partial reads";
        ]
  in
  let run_mode ~two_wave =
    let gen =
      Workload.Hospital.generator
        {
          (Workload.Hospital.default ~nodes) with
          Workload.Hospital.arrival_rate = 800.;
          visit_fanout = 3;
          post_delay = 0.02;
        }
    in
    let setup =
      {
        Runner.default_setup with
        Runner.seed = 111;
        duration = (if quick then 1.0 else 4.0);
        settle = 3.0;
      }
    in
    let outcome, engine =
      drive_3v ~seed:111 ~nodes ~policy:(Policy.Periodic 0.1)
        ~latency:(Latency.Exponential 0.02)
        ~cfg_f:(fun c ->
          {
            c with
            Engine.two_wave_quiescence = two_wave;
            debug_checks = false (* record, don't crash *);
          })
        gen setup
    in
    let atom = Runner.atomicity outcome in
    let polls = Counter_set.get outcome.Runner.stats "proto.polls" in
    let advs = Engine.advancements_completed engine in
    Table.add_row table
      [
        (if two_wave then "two-wave (paper)" else "single poll");
        Table.cell_i advs;
        Table.cell_i polls;
        Printf.sprintf "%.1f"
          (if advs = 0 then 0. else float_of_int polls /. float_of_int advs);
        Table.cell_i
          (Counter_set.get outcome.Runner.stats "proto.unsound_quiescence");
        Table.cell_i atom.Checker.Atomicity.partial_reads;
      ]
  in
  run_mode ~two_wave:true;
  run_mode ~two_wave:false;
  Table.to_string table
  ^ notes
      [
        "";
        "Finding: with hierarchical completion notices (each subtransaction";
        "terminates only after its children, as in the paper's Table 1),";
        "even a single matching poll was never observed to declare early —";
        "the counters' increment-before-send discipline closes the classic";
        "in-flight-message window. The two-wave check of the cited";
        "stable-property literature costs only about one extra poll round";
        "per phase and is kept as the default.";
      ]

(* A2: finishing an advancement without GC acknowledgements breaks the
   three-version bound. *)
let run_a2 ~quick =
  let nodes = 5 in
  let table =
    Table.create
      ~title:"A2: GC acknowledgement — why the ≤3-version bound needs it"
      ~columns:[ "mode"; "advancements"; "max versions"; "bound holds" ]
  in
  let run_mode ~acks =
    let gen =
      Workload.Hospital.generator
        {
          (Workload.Hospital.default ~nodes) with
          Workload.Hospital.arrival_rate = 1500.;
        }
    in
    let setup =
      {
        Runner.default_setup with
        Runner.seed = 121;
        duration = (if quick then 1.5 else 4.0);
        settle = 3.0;
      }
    in
    let _outcome, engine =
      drive_3v ~seed:121 ~nodes ~policy:(Policy.Periodic 0.02)
        ~latency:(Latency.Exponential 0.01) ~poll:0.005
        ~cfg_f:(fun c ->
          { c with Engine.await_gc_acks = acks; debug_checks = acks })
        gen setup
    in
    let maxv = Engine.max_versions_ever engine in
    Table.add_row table
      [
        (if acks then "await GC acks (sound)" else "fire-and-forget GC");
        Table.cell_i (Engine.advancements_completed engine);
        Table.cell_i maxv;
        string_of_bool (maxv <= 3);
      ]
  in
  run_mode ~acks:true;
  run_mode ~acks:false;
  Table.to_string table
  ^ notes
      [
        "";
        "Without the acknowledgement, the next advancement can start while a";
        "garbage-collection notice is still in flight; a node then creates a";
        "version-(v+1) copy before dropping version v-2, and an item";
        "transiently holds four versions. Waiting for the acks restores the";
        "paper's §4.4 property 2(a).";
      ]

(* A3: the §2.3 dual write is what keeps the new version consistent when a
   straggler updates an item that already has a newer copy. *)
let run_a3 ~quick =
  let nodes = 4 in
  let table =
    Table.create
      ~title:"A3: dual writes — dropping them silently loses updates"
      ~columns:
        [ "mode"; "committed updates"; "dual writes"; "replay mismatches" ]
  in
  let run_mode ~dual =
    let sim = Sim.create ~seed:131 () in
    let cfg =
      {
        (Engine.default_config ~nodes) with
        Engine.latency = Latency.Exponential 0.015;
        think_time = 0.0005;
        policy = Policy.Periodic 0.08;
        dual_writes = dual;
      }
    in
    let engine = Engine.create sim cfg () in
    let gen =
      Workload.Hospital.generator
        {
          (Workload.Hospital.default ~nodes) with
          Workload.Hospital.arrival_rate = 800.;
          visit_fanout = 3;
          post_delay = 0.03 (* plenty of stragglers *);
        }
    in
    let setup =
      {
        Runner.default_setup with
        Runner.seed = 131;
        duration = (if quick then 1.5 else 4.0);
        settle = 3.0;
      }
    in
    let outcome = Runner.drive sim (Engine.packed engine) gen setup in
    (* Publish everything, then replay-check the settled store. *)
    let a1 = Engine.advance engine and a2 = Engine.advance engine in
    ignore (Sim.run sim ~until:(Sim.now sim +. 20.) ());
    ignore (Simul.Ivar.is_full a1 && Simul.Ivar.is_full a2);
    let lookup key =
      let rec scan node =
        if node < 0 then None
        else
          match
            Mvstore.read_visible (Engine.store engine ~node) ~key
              ~version:max_int
          with
          | Some (_, v) -> Some v
          | None -> scan (node - 1)
      in
      scan (nodes - 1)
    in
    let replay = Checker.Replay.check outcome.Runner.history ~lookup in
    Table.add_row table
      [
        (if dual then "dual writes (paper §2.3)" else "own-version only");
        Table.cell_i (committed_updates outcome);
        Table.cell_i
          (Counter_set.get outcome.Runner.stats "store.dual_writes_total");
        Table.cell_i replay.Checker.Replay.mismatch_count;
      ]
  in
  run_mode ~dual:true;
  run_mode ~dual:false;
  Table.to_string table
  ^ notes
      [
        "";
        "With dual writes off, a straggler's update lands only in its own";
        "(old) version; when that version is garbage-collected the newer";
        "copy — which never saw the write — survives, and the final store";
        "no longer replays the committed history: charges vanish from the";
        "bill exactly as the paper's §2.3 analysis predicts.";
      ]

(* A4: retransmission. The advancement protocol never re-sends within a
   round on its own — a phase broadcast is sent once, a poll round awaits
   every reply — so without the channel-level retransmission a single lost
   protocol message blocks the coordinator forever. *)
let run_a4 ~quick =
  let nodes = 4 in
  let drop = 0.08 in
  let duration = if quick then 1.5 else 3.0 in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 400.;
        read_ratio = 0.25;
        fanout = 2;
        keys_per_node = 20;
        zipf_s = 0.7;
      }
  in
  let setup =
    { Runner.default_setup with Runner.seed = 167; duration; settle = 6.0 }
  in
  let table =
    Table.create
      ~title:"A4: retransmission — without it, message loss stalls advancement"
      ~columns:
        [
          "mode"; "advancements"; "committed"; "unfinished"; "retransmits";
          "drops";
        ]
  in
  let run_mode ~retransmit =
    let plan =
      Fault.Plan.make ~seed:1671 ~rules:(Fault.Plan.uniform_loss ~drop ()) ()
    in
    let outcome, engine =
      drive_3v ~seed:167 ~nodes ~policy:(Policy.Periodic 0.2)
        ~cfg_f:(fun c ->
          {
            c with
            Engine.reliable_channel = true;
            retransmit;
            retransmit_timeout = 0.02;
          })
        ~plan gen setup
    in
    Table.add_row table
      [
        (if retransmit then "retransmit (sound)" else "no retransmit");
        Table.cell_i (Engine.advancements_completed engine);
        Table.cell_i outcome.Runner.committed;
        Table.cell_i outcome.Runner.unfinished;
        Table.cell_i
          (Counter_set.get outcome.Runner.stats "net.retransmissions");
        Table.cell_i (Counter_set.get outcome.Runner.stats "fault.drops");
      ]
  in
  run_mode ~retransmit:true;
  run_mode ~retransmit:false;
  Table.to_string table
  ^ notes
      [
        "";
        "With retransmission off, the first lost phase broadcast, ack or";
        "poll reply leaves the coordinator waiting forever: advancement";
        "stalls (0 or near-0 completions) and transactions whose remote";
        "subtransactions were dropped never finish. With it on, the same";
        "loss pattern costs only duplicate bandwidth.";
      ]

(* ------------------------------------------------------------ registry *)

let all =
  [
    {
      id = "t1";
      title = "Table 1 — example execution replay";
      paper_ref = "Table 1, §2.3";
      run = run_t1;
    };
    {
      id = "f1";
      title = "Figure 1 — hospital scenario correctness";
      paper_ref = "Figure 1, §1";
      run = run_f1;
    };
    {
      id = "f2";
      title = "Figure 2 — version layout snapshots";
      paper_ref = "Figure 2, §2.3";
      run = run_f2;
    };
    {
      id = "e1";
      title = "Scalability across engines";
      paper_ref = "§1 four options, §8";
      run = run_e1;
    };
    {
      id = "e2";
      title = "Reads never delayed";
      paper_ref = "§8";
      run = run_e2;
    };
    {
      id = "e3";
      title = "Currency vs copy overhead";
      paper_ref = "§7";
      run = run_e3;
    };
    {
      id = "e4";
      title = "At most three versions";
      paper_ref = "§4.4 property 2a";
      run = run_e4;
    };
    {
      id = "e5";
      title = "Non-commuting updates (NC3V)";
      paper_ref = "§5";
      run = run_e5;
    };
    {
      id = "e6";
      title = "Dual-write overhead";
      paper_ref = "§2.3";
      run = run_e6;
    };
    {
      id = "e7";
      title = "Advancement asynchrony";
      paper_ref = "§8";
      run = run_e7;
    };
    {
      id = "e8";
      title = "Manual versioning comparison";
      paper_ref = "§1";
      run = run_e8;
    };
    {
      id = "e10";
      title = "Outage tolerance — frozen node";
      paper_ref = "§8 no-remote-delay, sharpest form";
      run = run_e10;
    };
    {
      id = "e11";
      title = "Message loss tolerance — retransmission";
      paper_ref = "§8 under an unreliable network";
      run = run_e11;
    };
    {
      id = "e12";
      title = "Crash-restart recovery vs Global-2PC";
      paper_ref = "§3.1 resilience, §4.1 late-node rule";
      run = run_e12;
    };
    {
      id = "e13";
      title = "Coordinator crash tolerance — WAL resume + watchdog";
      paper_ref = "§4.3 coordinator liveness; robustness extension";
      run = run_e13;
    };
    {
      id = "e14";
      title = "k-way replication — quorum advancement, failover, recovery";
      paper_ref = "§6 data replication; availability extension";
      run = run_e14;
    };
    {
      id = "e15";
      title = "Oracle-free liveness — heartbeat failure detection";
      paper_ref = "§4.3 liveness, §6 availability; robustness extension";
      run = run_e15;
    };
    {
      id = "e9";
      title = "Advancement message overhead";
      paper_ref = "§8 asynchrony, cost side";
      run = run_e9;
    };
    {
      id = "a1";
      title = "Ablation: two-wave quiescence detection";
      paper_ref = "§4.3 phase 2, [8,12,9]";
      run = run_a1;
    };
    {
      id = "a2";
      title = "Ablation: GC acknowledgements";
      paper_ref = "§4.4 property 2a";
      run = run_a2;
    };
    {
      id = "a3";
      title = "Ablation: dual writes";
      paper_ref = "§2.3";
      run = run_a3;
    };
    {
      id = "a4";
      title = "Ablation: retransmission under loss";
      paper_ref = "§4.3 liveness under an unreliable network";
      run = run_a4;
    };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

(* ------------------------------------------------------------ smoke *)

let smoke () =
  let buf = Buffer.create 256 in
  let ok = ref true in
  let check name cond =
    if not cond then ok := false;
    Buffer.add_string buf
      (Printf.sprintf "  [%s] %s\n" (if cond then "ok" else "FAIL") name)
  in
  (* Table 1 scripted replay: the protocol's ground truth. *)
  let replay = Table1.run () in
  check "t1: advancement completed" replay.Table1.advancement_completed;
  check "t1: update transactions committed"
    (replay.Table1.txn_i_committed && replay.Table1.txn_j_committed);
  check "t1: reads saw only version-0 data" replay.Table1.reads_saw_version0;
  (* Tiny E11: 2 nodes, 5% loss + duplication, reliable channel on. *)
  let nodes = 2 in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 300.;
        read_ratio = 0.25;
        fanout = 2;
        keys_per_node = 10;
      }
  in
  let setup =
    { Runner.default_setup with Runner.seed = 7; duration = 0.4; settle = 4.0 }
  in
  let plan =
    Fault.Plan.make ~seed:7
      ~rules:(Fault.Plan.uniform_loss ~dup:0.02 ~drop:0.05 ())
      ()
  in
  let outcome, engine =
    drive_3v ~seed:7 ~nodes ~policy:(Policy.Periodic 0.1)
      ~cfg_f:(fun c ->
        { c with Engine.reliable_channel = true; retransmit_timeout = 0.01 })
      ~plan gen setup
  in
  let atom = Runner.atomicity outcome in
  check "e11-smoke: advancement completes under 5% loss"
    (Engine.advancements_completed engine >= 1);
  check "e11-smoke: history is anomaly-free"
    (atom.Checker.Atomicity.partial_reads = 0);
  check "e11-smoke: at most three versions"
    (Engine.max_versions_ever engine <= 3);
  check "e11-smoke: no unfinished transactions"
    (outcome.Runner.unfinished = 0);
  (* Coord-smoke: one advancement with a mid-phase-2 coordinator crash
     (constant latency pins the phase schedule: phase 1 needs two 3 ms
     hops, so 0.215s lands in phase 2's poll loop; restart at 0.3s). *)
  let sim = Sim.create ~seed:13 () in
  let ccfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Constant 0.003;
      think_time = 0.0002;
      policy = Policy.Manual;
      reliable_channel = true;
      retransmit_timeout = 0.01;
    }
  in
  let faults =
    Fault.Injector.create sim
      (Fault.Plan.make ~seed:13
         ~coord_crashes:[ Fault.Plan.coord_crash ~at:0.215 ~restart:0.3 ]
         ())
  in
  let cengine = Engine.create sim ccfg ~faults () in
  let adv = ref None in
  Sim.schedule sim ~delay:0.2 (fun () -> adv := Some (Engine.advance cengine));
  let coutcome =
    Runner.drive sim (Engine.packed cengine) gen
      { Runner.default_setup with Runner.seed = 13; duration = 0.4; settle = 4.0 }
  in
  let catom = Runner.atomicity coutcome in
  check "coord-smoke: advancement completes across a coordinator crash"
    ((match !adv with Some iv -> Simul.Ivar.is_full iv | None -> false)
    && Engine.advancements_completed cengine >= 1);
  check "coord-smoke: coordinator recovered from its WAL"
    (Counter_set.get coutcome.Runner.stats "proto.coord_recoveries" >= 1);
  check "coord-smoke: anomaly-free, bounded versions, nothing unfinished"
    (catom.Checker.Atomicity.partial_reads = 0
    && Engine.max_versions_ever cengine <= 3
    && coutcome.Runner.unfinished = 0);
  (!ok, Buffer.contents buf)
