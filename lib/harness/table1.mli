(** Deterministic replay of the paper's Table 1 execution and Figure 2
    version layouts.

    The scenario: three sites p, q, s holding A,B / D,E / F. Update
    transaction [i] (version 1) starts at p, spawning [iq] to q and [is] to
    s; [iq] itself spawns [iqp] back to p. Version advancement begins while
    [i] is in flight; the start-advancement notice reaches q quickly, p late
    (p learns implicitly from [jp], a child of the version-2 transaction
    [j]), and s only at "time 28". Reads [x] (at p) and [y] (at q) run
    throughout against version 0.

    Message latencies are scripted per link (consumed in send order) so the
    simulated event sequence lands on the paper's timeline; the final
    counter values, the dual write of [iq] on D, the single-version write on
    E, and the post-GC layout all match the paper. *)

type snapshot = {
  snap_time : float;
  (* per site: (site name, vu, vr, [(key, versions descending)]) *)
  sites : (string * int * int * (string * int list) list) list;
}

type replay = {
  trace : Threev.Trace.t;
  snapshots : snapshot list;  (** at the paper's times 12, 20, 28, and final *)
  final_counters : (string * int) list;
      (** e.g. [("R1[p->q]", 1); ("C1[p->q]", 1); ...] — only nonzero ones *)
  advancement_completed : bool;
  read_version_after : int;
  txn_i_committed : bool;
  txn_j_committed : bool;
  reads_saw_version0 : bool;
      (** both read transactions observed only version-0 data *)
}

(** Run the scripted scenario and return everything the T1/F2 experiments
    and tests assert on. *)
val run : unit -> replay

(** Render the replay as a Table 1-style textual table. *)
val render_trace : replay -> string

(** Render the Figure 2 version-layout snapshots. *)
val render_snapshots : replay -> string
