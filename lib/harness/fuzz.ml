module Sim = Simul.Sim
module Latency = Netsim.Latency
module Result = Txn.Result
module Engine = Threev.Engine
module Policy = Threev.Policy
module Mvstore = Store.Mvstore
module Srz = Checker.Serializability

type engine_kind =
  | E3v
  | E3v_nc
  | E3v_repl
  | E3v_fd
  | E3v_shard
  | E2pc
  | E_nocoord
  | E_manual

let engine_label = function
  | E3v -> "3v"
  | E3v_nc -> "3v-nc"
  | E3v_repl -> "3v-repl"
  | E3v_fd -> "3v-fd"
  | E3v_shard -> "3v-shard"
  | E2pc -> "2pc"
  | E_nocoord -> "nocoord"
  | E_manual -> "manual"

(* The failure-detector cases pin these; the rendered reproducer lines
   carry the same values so `threev_sim run` replays the same suspicion
   schedule. *)
let fd_hb_period = 0.02
let fd_hb_timeout = 0.08
let fd_phase_deadline = 0.5

type atom =
  | Loss of float
  | Dup of float
  | Partition of int * int * float * float
  | Partition_set of int list * float * float * bool
  | Crash of int * float * float
  | Coord_crash of float * float
  | Hb_loss of int * float * float * float

let atom_flag = function
  | Loss p -> Printf.sprintf "--drop-prob %g" p
  | Dup p -> Printf.sprintf "--dup-prob %g" p
  | Partition (s, d, f, u) -> Printf.sprintf "--partition %d:%d:%g:%g" s d f u
  | Partition_set (set, f, u, oneway) ->
      Printf.sprintf "--partition %s@%g:%g%s"
        (String.concat "," (List.map string_of_int set))
        f u
        (if oneway then ":oneway" else "")
  | Crash (n, a, r) -> Printf.sprintf "--crash %d@%g:%g" n a r
  | Coord_crash (a, r) -> Printf.sprintf "--coord-crash %g:%g" a r
  | Hb_loss (n, f, u, p) ->
      if p >= 1. then Printf.sprintf "--hb-loss %d@%g:%g" n f u
      else Printf.sprintf "--hb-loss %d@%g:%g:%g" n f u p

type workload_kind = W_synthetic | W_hospital | W_pos

let workload_label = function
  | W_synthetic -> "synthetic"
  | W_hospital -> "hospital"
  | W_pos -> "pos"

type case = {
  index : int;
  engine : engine_kind;
  workload : workload_kind;
  nodes : int;
  replicas : int;
  shards : int;
  seed : int;
  fault_seed : int;
  rate : float;
  read_ratio : float;
  nc_ratio : float;
  duration : float;
  atoms : atom list;
}

(* ------------------------------------------------------- derivation *)

let round3 x = Float.round (x *. 1000.) /. 1000.

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(* Fault atoms for a 3V case: each kind at most once, so a plan maps
   one-to-one onto `threev_sim run` flags. All fault times land inside the
   submission window plus the first second of settling, where there is
   still protocol traffic to disturb. *)
let gen_atoms rng ~nodes ~duration =
  let horizon = duration +. 1.0 in
  let time () = round3 (0.05 +. Random.State.float rng (horizon -. 0.05)) in
  let make_kind = function
    | 0 -> Loss (round3 (0.02 +. Random.State.float rng 0.06))
    | 1 -> Dup (round3 (0.02 +. Random.State.float rng 0.06))
    | 2 ->
        let src = Random.State.int rng nodes in
        let dst = (src + 1 + Random.State.int rng (nodes - 1)) mod nodes in
        let from_ = time () in
        Partition (src, dst, from_, round3 (from_ +. 0.1 +. Random.State.float rng 0.15))
    | 3 ->
        let at = time () in
        Crash
          (Random.State.int rng nodes, at,
           round3 (at +. 0.1 +. Random.State.float rng 0.15))
    | _ ->
        let at = time () in
        Coord_crash (at, round3 (at +. 0.1 +. Random.State.float rng 0.2))
  in
  (* Shuffle kinds, keep 1-2 distinct ones. *)
  let kinds = [ 0; 1; 2; 3; 4 ] in
  let shuffled =
    List.map (fun k -> (Random.State.bits rng, k)) kinds
    |> List.sort compare |> List.map snd
  in
  let n = 1 + Random.State.int rng 2 in
  List.filteri (fun i _ -> i < n) shuffled |> List.map make_kind

(* Fault atoms for a replicated 3V case: always at least one data-node
   crash (the whole point of replication), optionally compounded with
   uniform loss. *)
let gen_repl_atoms rng ~nodes ~duration =
  let horizon = duration +. 1.0 in
  let at = round3 (0.05 +. Random.State.float rng (horizon -. 0.05)) in
  let crash =
    Crash
      ( Random.State.int rng nodes,
        at,
        round3 (at +. 0.1 +. Random.State.float rng 0.15) )
  in
  if Random.State.bool rng then
    [ Loss (round3 (0.02 +. Random.State.float rng 0.04)); crash ]
  else [ crash ]

(* Fault atoms for a sharded case: always a replica crash (each shard's
   block is replicated, so any node is fair game), optionally compounded
   with uniform loss or a coordinator crash — which the injector routes to
   shard 0's coordinator, the failure-matrix "coordinator of one shard
   down, the other shards keep advancing" row. *)
let gen_shard_atoms rng ~nodes ~duration =
  let horizon = duration +. 1.0 in
  let time () = round3 (0.05 +. Random.State.float rng (horizon -. 0.05)) in
  let at = time () in
  let crash =
    Crash
      ( Random.State.int rng nodes,
        at,
        round3 (at +. 0.1 +. Random.State.float rng 0.15) )
  in
  match Random.State.int rng 3 with
  | 0 -> [ crash ]
  | 1 -> [ Loss (round3 (0.02 +. Random.State.float rng 0.04)); crash ]
  | _ ->
      let a = time () in
      [ crash; Coord_crash (a, round3 (a +. 0.1 +. Random.State.float rng 0.2)) ]

(* Fault atoms for a failure-detector case: always a heartbeat-loss storm
   on some node (the false-suspicion provocation — protocol traffic
   untouched, only the detector's evidence cut), optionally compounded
   with a real replica crash or a one-way single-node partition. These are
   the three liveness shapes E15 certifies. *)
let gen_fd_atoms rng ~nodes ~duration =
  let horizon = duration +. 1.0 in
  let window ~len =
    let from_ = round3 (0.05 +. Random.State.float rng (horizon -. 0.05)) in
    (from_, round3 (from_ +. 0.1 +. Random.State.float rng len))
  in
  let from_, until_ = window ~len:0.2 in
  let storm =
    Hb_loss (Random.State.int rng nodes, from_, until_, pick rng [ 1.; 1.; 0.8 ])
  in
  match Random.State.int rng 3 with
  | 0 -> [ storm ]
  | 1 ->
      let at, restart = window ~len:0.15 in
      [ storm; Crash (Random.State.int rng nodes, at, restart) ]
  | _ ->
      let f, u = window ~len:0.15 in
      [ storm; Partition_set ([ Random.State.int rng nodes ], f, u, true) ]

let case_of_index ~fuzz_seed ~quick index =
  let rng = Random.State.make [| fuzz_seed; index; 0xf0022 |] in
  let engine =
    match index mod 8 with
    | 0 -> E3v
    | 1 -> E3v_nc
    | 2 -> E2pc
    | 3 -> E_nocoord
    | 4 -> E_manual
    | 5 -> E3v_repl
    | 6 -> E3v_fd
    | _ -> E3v_shard
  in
  (* Replicated cases run two groups of three; sharded cases four shard
     blocks of two (one replica pair each); k <= nodes must hold. *)
  let nodes =
    match engine with
    | E3v_repl | E3v_fd -> 6
    | E3v_shard -> 8
    | _ -> 3 + Random.State.int rng 2
  in
  let replicas =
    match engine with E3v_repl | E3v_fd -> 3 | E3v_shard -> 2 | _ -> 1
  in
  let shards = match engine with E3v_shard -> 4 | _ -> 1 in
  let seed = 1 + Random.State.int rng 9999 in
  let fault_seed = 1 + Random.State.int rng 9999 in
  let duration = if quick then 0.15 else 0.4 in
  let workload, rate, read_ratio, nc_ratio =
    match engine with
    | E3v_nc ->
        ( pick rng [ W_synthetic; W_pos ],
          pick rng [ 200.; 300. ],
          pick rng [ 0.2; 0.25; 0.3 ],
          pick rng [ 0.05; 0.1; 0.2 ] )
    | E3v | E3v_repl | E3v_fd | E2pc ->
        (* Replication covers the commuting core only, so nc_ratio stays 0
           for E3v_repl / E3v_fd (the engine rejects nc_mode with
           replicas > 1). *)
        ( pick rng [ W_synthetic; W_hospital; W_pos ],
          pick rng [ 200.; 300.; 400. ],
          pick rng [ 0.2; 0.25; 0.3 ],
          0. )
    | E3v_shard ->
        (* Only the synthetic generator is shard-aware (updates confined
           to one shard block, reads free to span); the higher read ratio
           keeps cross-shard vectored reads frequent. *)
        ( W_synthetic,
          pick rng [ 200.; 300.; 400. ],
          pick rng [ 0.3; 0.35; 0.4 ],
          0. )
    | E_nocoord ->
        (* The F1 front-end shape: reliably produces partial reads. *)
        (W_hospital, 400., 0.3, 0.)
    | E_manual ->
        (* The E8 straggler shape: small safety delay vs late postings. *)
        (W_hospital, 800., 0.4, 0.)
  in
  let atoms =
    match engine with
    | E3v ->
        if Random.State.float rng 1.0 < 0.25 then []
        else gen_atoms rng ~nodes ~duration
    | E3v_repl -> gen_repl_atoms rng ~nodes ~duration
    | E3v_fd -> gen_fd_atoms rng ~nodes ~duration
    | E3v_shard -> gen_shard_atoms rng ~nodes ~duration
    | E3v_nc ->
        if Random.State.bool rng then
          [ Loss (round3 (0.02 +. Random.State.float rng 0.04)) ]
        else []
    | _ -> []
  in
  {
    index; engine; workload; nodes; replicas; shards; seed; fault_seed; rate;
    read_ratio; nc_ratio; duration; atoms;
  }

(* --------------------------------------------------------- execution *)

let plan_of_atoms ~fault_seed ~nodes ~shards atoms =
  if atoms = [] then None
  else
    let drop = List.find_map (function Loss p -> Some p | _ -> None) atoms in
    let dup = List.find_map (function Dup p -> Some p | _ -> None) atoms in
    let rules =
      (if drop = None && dup = None then []
       else
         Fault.Plan.uniform_loss
           ?dup ~drop:(Option.value drop ~default:0.) ())
      @ List.concat_map
          (function
            | Partition (src, dst, from_, until_) ->
                [ Fault.Plan.partition ~src ~dst ~from_ ~until_ ]
            | Partition_set (set, from_, until_, oneway) ->
                (* The engine's endpoint space is the data nodes plus one
                   coordinator per shard at ids [nodes..nodes+S-1]. *)
                Fault.Plan.partition_set ~universe:(nodes + shards) ~set
                  ~oneway ~from_ ~until_ ()
            | Hb_loss (src, from_, until_, prob) ->
                Fault.Plan.heartbeat_loss ~src ~prob ~from_ ~until_ ()
            | _ -> [])
          atoms
    in
    let crashes =
      List.filter_map
        (function
          | Crash (node, at, restart) ->
              Some (Fault.Plan.crash ~node ~at ~restart)
          | _ -> None)
        atoms
    in
    let coord_crashes =
      List.filter_map
        (function
          | Coord_crash (at, restart) ->
              Some (Fault.Plan.coord_crash ~at ~restart)
          | _ -> None)
        atoms
    in
    Some (Fault.Plan.make ~seed:fault_seed ~rules ~crashes ~coord_crashes ())

(* Workload construction mirrors `threev_sim run` for the strict engines,
   so the rendered run command reproduces the same generator stream. The
   expected-anomaly baselines use the proven anomaly-seeding shapes of F1
   (no-coordination) and E8 (manual versioning) instead. *)
let gen_of case =
  let nodes = case.nodes in
  match (case.engine, case.workload) with
  | (E_nocoord, _) ->
      Workload.Hospital.generator
        {
          (Workload.Hospital.default ~nodes) with
          Workload.Hospital.front_end = true;
          arrival_rate = case.rate;
          read_ratio = case.read_ratio;
          visit_fanout = 2;
        }
  | (E_manual, _) ->
      Workload.Hospital.generator
        {
          (Workload.Hospital.default ~nodes) with
          Workload.Hospital.arrival_rate = case.rate;
          read_ratio = case.read_ratio;
          patients = 25;
          visit_fanout = 3;
          post_delay = 0.08;
        }
  | (_, W_synthetic) ->
      Workload.Synthetic.generator
        {
          (Workload.Synthetic.default ~nodes) with
          Workload.Synthetic.arrival_rate = case.rate;
          shards = case.shards;
          read_ratio = case.read_ratio;
          nc_ratio = case.nc_ratio;
        }
  | (_, W_hospital) ->
      Workload.Hospital.generator
        {
          (Workload.Hospital.default ~nodes) with
          Workload.Hospital.arrival_rate = case.rate;
          read_ratio = case.read_ratio;
        }
  | (_, W_pos) ->
      Workload.Point_of_sale.generator
        {
          (Workload.Point_of_sale.default ~nodes) with
          Workload.Point_of_sale.arrival_rate = case.rate;
          read_ratio = case.read_ratio;
          nc_ratio = case.nc_ratio;
        }

type check = { check_name : string; ok : bool; detail : string }

type verdict = Clean | Anomaly of string list | Failure of check list

type case_report = {
  case : case;
  verdict : verdict;
  committed : int;
  unfinished : int;
  shrunk : atom list option;
  reproducers : string list;
}

let strict = function
  | E3v | E3v_nc | E3v_repl | E3v_fd | E3v_shard | E2pc -> true
  | E_nocoord | E_manual -> false

(* Drive [case] with fault atoms [atoms] (usually [case.atoms]; subsets
   during shrinking) and run every applicable checker. *)
let execute case atoms =
  let sim = Sim.create ~seed:case.seed () in
  let plan =
    plan_of_atoms ~fault_seed:case.fault_seed ~nodes:case.nodes
      ~shards:case.shards atoms
  in
  let faults = Option.map (Fault.Injector.create sim) plan in
  let gen = gen_of case in
  let setup =
    {
      Runner.default_setup with
      Runner.seed = case.seed;
      duration = case.duration;
      settle = 5.0;
    }
  in
  let outcome, lookup, vector =
    match case.engine with
    | E3v | E3v_nc | E3v_repl | E3v_fd | E3v_shard ->
        let fd = case.engine = E3v_fd in
        let cfg =
          {
            (Engine.default_config ~nodes:case.nodes) with
            Engine.latency = Latency.Exponential 0.003;
            policy = Policy.Periodic 0.2;
            nc_mode = case.engine = E3v_nc;
            think_time = 0.0005;
            reliable_channel = plan <> None || fd;
            retransmit_timeout = 0.02;
            replicas = case.replicas;
            shards = case.shards;
            hb_period = (if fd then fd_hb_period else 0.);
            hb_timeout = (if fd then fd_hb_timeout else 0.1);
            phase_deadline = (if fd then fd_phase_deadline else infinity);
          }
        in
        let engine = Engine.create sim cfg ?faults () in
        let outcome = Runner.drive sim (Engine.packed engine) gen setup in
        (* Publish everything, then replay-check the settled store. *)
        let a1 = Engine.advance engine and a2 = Engine.advance engine in
        ignore (Sim.run sim ~until:(Sim.now sim +. 20.) ());
        ignore (Simul.Ivar.is_full a1 && Simul.Ivar.is_full a2);
        let lookup key =
          let rec scan node =
            if node < 0 then None
            else
              match
                Mvstore.read_visible (Engine.store engine ~node) ~key
                  ~version:max_int
              with
              | Some (_, v) -> Some v
              | None -> scan (node - 1)
          in
          scan (case.nodes - 1)
        in
        let vector =
          if case.shards > 1 then
            Some (fun txn -> Engine.assigned_vector engine ~txn)
          else None
        in
        (outcome, Some lookup, vector)
    | E2pc ->
        let cfg =
          {
            (Baselines.Global_2pc.default_config ~nodes:case.nodes) with
            Baselines.Global_2pc.latency = Latency.Exponential 0.003;
            think_time = 0.0005;
            deadlock_timeout = 0.05;
          }
        in
        let engine = Baselines.Global_2pc.create ?faults sim cfg in
        ( Runner.drive sim (Baselines.Global_2pc.packed engine) gen setup,
          None,
          None )
    | E_nocoord ->
        let cfg =
          {
            (Baselines.No_coord.default_config ~nodes:case.nodes) with
            Baselines.No_coord.latency = Latency.Exponential 0.003;
            think_time = 0.0005;
          }
        in
        let engine = Baselines.No_coord.create sim cfg in
        ( Runner.drive sim (Baselines.No_coord.packed engine) gen setup,
          None,
          None )
    | E_manual ->
        let cfg =
          {
            (Baselines.Manual_versioning.default_config ~nodes:case.nodes) with
            Baselines.Manual_versioning.latency = Latency.Uniform (0.0005, 0.012);
            think_time = 0.0005;
            period = 0.2;
            safety_delay = (if case.seed land 1 = 0 then 0. else 0.005);
          }
        in
        let engine = Baselines.Manual_versioning.create sim cfg in
        ( Runner.drive sim (Baselines.Manual_versioning.packed engine) gen setup,
          None,
          None )
  in
  let history = outcome.Runner.history in
  (* Per-shard version numbers are incomparable across shards: the
     certifiers only order same-shard versions, and exact-version reads
     are fenced per key by the assigned read vector. *)
  let shard_of_node =
    if case.shards > 1 then Some (fun n -> n / (case.nodes / case.shards))
    else None
  in
  let srz = Srz.certify ?shard_of_node history in
  let atomr = Checker.Atomicity.check history in
  let checks =
    [
      {
        check_name = "serializability";
        ok = Srz.serializable srz && srz.Srz.unknown_count = 0;
        detail = Format.asprintf "%a" Srz.pp srz;
      };
      {
        check_name = "atomicity";
        ok = Checker.Atomicity.clean atomr;
        detail = Format.asprintf "%a" Checker.Atomicity.pp atomr;
      };
    ]
    @ (match case.engine with
      | E3v | E3v_nc | E3v_repl | E3v_fd | E3v_shard ->
          let vr = Checker.Version_reads.check ?vector ?shard_of_node history in
          [
            {
              check_name = "version-reads";
              ok = Checker.Version_reads.clean vr;
              detail = Format.asprintf "%a" Checker.Version_reads.pp vr;
            };
          ]
      | _ -> [])
    @ (match lookup with
      | Some lookup ->
          let rp = Checker.Replay.check history ~lookup in
          [
            {
              check_name = "replay";
              ok = Checker.Replay.clean rp;
              detail = Format.asprintf "%a" Checker.Replay.pp rp;
            };
          ]
      | None -> [])
    @
    if strict case.engine then
      [
        {
          check_name = "settled";
          ok = outcome.Runner.unfinished = 0;
          detail =
            Printf.sprintf "unfinished=%d of %d submitted"
              outcome.Runner.unfinished outcome.Runner.submitted;
        };
      ]
    else []
  in
  (outcome, srz, checks)

(* ----------------------------------------------------------- shrink *)

let fails case atoms =
  match execute case atoms with
  | exception _ -> true
  | _, _, checks -> List.exists (fun c -> not c.ok) checks

(* Greedy delta-debugging: drop each atom in turn; keep the drop whenever
   the case still fails without it. *)
let shrink case =
  let rec go kept = function
    | [] -> kept
    | a :: rest ->
        if fails case (kept @ rest) then go kept rest
        else go (kept @ [ a ]) rest
  in
  go [] case.atoms

(* ------------------------------------------------------- reproducers *)

let fuzz_reproducer ~fuzz_seed ~quick case =
  Printf.sprintf "threev_sim fuzz --fuzz-seed %d --only %d%s" fuzz_seed
    case.index
    (if quick then " --quick" else "")

let run_reproducer case atoms =
  let engine_flag =
    match case.engine with
    | E3v | E3v_nc | E3v_repl | E3v_fd | E3v_shard -> "3v"
    | E2pc -> "2pc"
    | E_nocoord -> "nocoord"
    | E_manual -> "manual"
  in
  String.concat " "
    ([
       "threev_sim run";
       "--engine"; engine_flag;
       "--workload"; workload_label case.workload;
       Printf.sprintf "--nodes %d" case.nodes;
       Printf.sprintf "--rate %g" case.rate;
       Printf.sprintf "--duration %g" case.duration;
       Printf.sprintf "--seed %d" case.seed;
       Printf.sprintf "--read-ratio %g" case.read_ratio;
     ]
    @ (if case.replicas > 1 then
         [ Printf.sprintf "--replicas %d" case.replicas ]
       else [])
    @ (if case.shards > 1 then [ Printf.sprintf "--shards %d" case.shards ]
       else [])
    @ (if case.nc_ratio > 0. then
         [ Printf.sprintf "--nc-ratio %g" case.nc_ratio ]
       else [])
    @ (if case.engine = E3v_fd then
         [
           Printf.sprintf "--hb-period %g" fd_hb_period;
           Printf.sprintf "--hb-timeout %g" fd_hb_timeout;
           Printf.sprintf "--phase-deadline %g" fd_phase_deadline;
         ]
       else [])
    @
    if atoms = [] then []
    else
      Printf.sprintf "--fault-seed %d" case.fault_seed
      :: List.map atom_flag atoms)

(* ----------------------------------------------------------- verdict *)

let run_case ~fuzz_seed ~quick case =
  let finish ~verdict ~committed ~unfinished ~shrunk ~extra_repro =
    {
      case;
      verdict;
      committed;
      unfinished;
      shrunk;
      reproducers = fuzz_reproducer ~fuzz_seed ~quick case :: extra_repro;
    }
  in
  match execute case case.atoms with
  | exception e ->
      let c =
        {
          check_name = "drive";
          ok = false;
          detail = Printexc.to_string e;
        }
      in
      finish ~verdict:(Failure [ c ]) ~committed:0 ~unfinished:0
        ~shrunk:None
        ~extra_repro:
          (if strict case.engine then [ run_reproducer case case.atoms ]
           else [])
  | outcome, _srz, checks ->
      let failed = List.filter (fun c -> not c.ok) checks in
      let committed = outcome.Runner.committed in
      let unfinished = outcome.Runner.unfinished in
      if failed = [] then
        finish ~verdict:Clean ~committed ~unfinished ~shrunk:None
          ~extra_repro:[]
      else if strict case.engine then begin
        let shrunk =
          if case.atoms = [] then None else Some (shrink case)
        in
        let repro_atoms = Option.value shrunk ~default:case.atoms in
        finish ~verdict:(Failure failed) ~committed ~unfinished ~shrunk
          ~extra_repro:[ run_reproducer case repro_atoms ]
      end
      else
        (* Expected-anomaly baseline: the checkers flagging it is the
           certifier doing its job. Record what was caught, with the cycle
           witness when there is one. *)
        let lines =
          (* [Srz.pp] already renders the cycle witness inline. *)
          List.map
            (fun c -> Printf.sprintf "%s: %s" c.check_name c.detail)
            failed
        in
        finish ~verdict:(Anomaly lines) ~committed ~unfinished ~shrunk:None
          ~extra_repro:[]

(* ------------------------------------------------------------- sweep *)

type summary = {
  total : int;
  clean : int;
  anomalies_flagged : int;
  failed : int;
  reports : case_report list;
}

let case_line r =
  let c = r.case in
  let faults =
    if c.atoms = [] then "fault-free"
    else String.concat " " (List.map atom_flag c.atoms)
  in
  let verdict =
    match r.verdict with
    | Clean -> "clean"
    | Anomaly _ -> "ANOMALY FLAGGED (expected for this baseline)"
    | Failure checks ->
        "FAILED: "
        ^ String.concat ", " (List.map (fun c -> c.check_name) checks)
  in
  Printf.sprintf "case %3d  %-7s %-9s n=%d seed=%-5d %-40s committed=%-4d %s"
    c.index (engine_label c.engine) (workload_label c.workload) c.nodes c.seed
    faults r.committed verdict

let sweep ?(runs = 50) ?(fuzz_seed = 1) ?only ?(quick = false) ?(log = ignore)
    () =
  let indices =
    match only with Some i -> [ i ] | None -> List.init runs Fun.id
  in
  let reports =
    List.map
      (fun index ->
        let case = case_of_index ~fuzz_seed ~quick index in
        let r = run_case ~fuzz_seed ~quick case in
        log (case_line r);
        (match r.verdict with
        | Clean -> ()
        | Anomaly lines ->
            List.iter (fun l -> log ("      " ^ l)) lines
        | Failure checks ->
            List.iter
              (fun c -> log (Printf.sprintf "      FAIL %s: %s" c.check_name c.detail))
              checks;
            (match r.shrunk with
            | Some atoms ->
                log
                  ("      shrunk fault plan: "
                  ^
                  if atoms = [] then "(empty — faults not needed)"
                  else String.concat " " (List.map atom_flag atoms))
            | None -> ());
            List.iter (fun s -> log ("      reproduce: " ^ s)) r.reproducers);
        r)
      indices
  in
  let count p = List.length (List.filter p reports) in
  {
    total = List.length reports;
    clean = count (fun r -> r.verdict = Clean);
    anomalies_flagged =
      count (fun r -> match r.verdict with Anomaly _ -> true | _ -> false);
    failed =
      count (fun r -> match r.verdict with Failure _ -> true | _ -> false);
    reports;
  }

let ok s = s.failed = 0

let pp_summary ppf s =
  Format.fprintf ppf
    "fuzz: %d cases — %d clean, %d expected anomalies flagged, %d FAILED%s"
    s.total s.clean s.anomalies_flagged s.failed
    (if s.failed = 0 then " — strict engines 1SR-clean" else "")
