(** The experiment registry: one entry per table/figure/claim reproduced.

    Each experiment renders its results as markdown tables (via
    {!Stats.Table}) plus explanatory notes; [bench/main.exe] runs them all
    and [bin/threev_sim.exe] runs them individually. [quick] shrinks sweeps
    and durations for CI-speed runs. See DESIGN.md §3 for the experiment ↔
    paper mapping and EXPERIMENTS.md for recorded outputs. *)

type t = {
  id : string;  (** "t1", "f1", "f2", "e1" .. "e12", "a1" .. "a4" *)
  title : string;
  paper_ref : string;  (** which part of the paper this reproduces *)
  run : quick:bool -> string;  (** rendered report *)
}

(** All experiments, in presentation order (t1, f1, f2, e1..e12, a1..a4). *)
val all : t list

(** Look an experiment up by id (case-insensitive). *)
val find : string -> t option

(** [smoke ()] is the CI gate: the Table 1 scripted replay, a tiny E11
    (2 nodes, 5% message loss + duplication, reliable channel on), and a
    sub-second coord-smoke (one advancement with a mid-flight coordinator
    crash that must recover from the WAL), in well under ten seconds.
    Returns [(all_passed, report)]. *)
val smoke : unit -> bool * string
