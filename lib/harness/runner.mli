(** Open-loop workload driver: engine × generator → measured outcome.

    [drive] spawns a client process that submits transactions with Poisson
    interarrivals at the generator's rate for [duration] virtual seconds,
    lets the simulation settle for [settle] more, then harvests results.
    The same driver runs every engine, so outcomes are directly
    comparable. *)

type setup = {
  seed : int;
  duration : float;  (** submission window, virtual seconds *)
  settle : float;  (** extra virtual time for in-flight work to finish *)
  max_txns : int;  (** hard cap on submissions *)
}

(** [{seed = 1; duration = 2.0; settle = 5.0; max_txns = 100_000}]. *)
val default_setup : setup

type outcome = {
  engine_name : string;
  history : (Txn.Spec.t * Txn.Result.t) list;  (** finished transactions *)
  submitted : int;
  committed : int;
  aborted : int;
  unfinished : int;  (** submissions whose result never arrived *)
  duration : float;  (** length of the submission window *)
  throughput : float;  (** committed transactions per virtual second *)
  read_latency : Stats.Histogram.t;  (** settlement latency, read-only txns *)
  update_latency : Stats.Histogram.t;  (** settlement latency, updates *)
  read_blocking : Stats.Histogram.t;  (** user-blocking latency, reads *)
  update_blocking : Stats.Histogram.t;  (** user-blocking latency, updates *)
  in_flight : Stats.Series.t;
      (** (virtual time, submitted-but-unresolved transactions), sampled
          every 50 ms — makes congestion and outage backlogs visible *)
  stats : Stats.Counter_set.t;  (** engine instrumentation snapshot *)
}

(** [drive sim engine gen setup] runs the full experiment on [sim] (the
    engine must have been created on the same simulation). Returns after the
    simulation settles. *)
val drive :
  Simul.Sim.t -> Txn.Engine_intf.packed -> Workload.Generator.t -> setup ->
  outcome

(** Atomic-visibility report for an outcome's history. *)
val atomicity : outcome -> Checker.Atomicity.report

(** Staleness report for an outcome's history. *)
val staleness : outcome -> Checker.Staleness.report
