module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Latency = Netsim.Latency
module Mvstore = Store.Mvstore
module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Result = Txn.Result
module Engine = Threev.Engine
module Trace = Threev.Trace
module Counters = Threev.Counters

type snapshot = {
  snap_time : float;
  sites : (string * int * int * (string * int list) list) list;
}

type replay = {
  trace : Trace.t;
  snapshots : snapshot list;
  final_counters : (string * int) list;
  advancement_completed : bool;
  read_version_after : int;
  txn_i_committed : bool;
  txn_j_committed : bool;
  reads_saw_version0 : bool;
}

let p = 0
let q = 1
let s = 2
let site_names = [| "p"; "q"; "s" |]

(* Per-link latency schedules, consumed in send order; links not listed (or
   exhausted) fall back to the engine's default latency. The values place
   each message's arrival on the paper's Table 1 timeline. *)
let scripted_links () =
  let schedules : (int * int, float Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let program src dst delays =
    let queue = Queue.create () in
    List.iter (fun d -> Queue.add d queue) delays;
    Hashtbl.replace schedules (src, dst) queue
  in
  let coord = 3 in
  program p q [ 11.5; 1.0; 1.5 ] (* iq; jp completion; iqp completion *);
  program p s [ 3.5 ] (* is *);
  program q p [ 8.5; 8.5; 1.0 ] (* jp; iqp; iq completion *);
  program s p [ 20.5 ] (* is completion, paper row 26 *);
  program coord q [ 0.6 ] (* start-advancement reaches q before tx j *);
  program coord p [ 12.0 ] (* ... reaches p at 21, after jp told it *);
  program coord s [ 19.0 ] (* ... reaches s only at 28 *);
  fun ~src ~dst ->
    match Hashtbl.find_opt schedules (src, dst) with
    | None -> None
    | Some queue -> (
        match Queue.take_opt queue with
        | Some d -> Some (Latency.Constant d)
        | None -> None)

(* Initial state of Figure 2: A,B at p; D,E at q; F at s — all version 0. *)
let preload engine =
  let put node key =
    ignore
      (Mvstore.write_exact (Engine.store engine ~node) ~key ~version:0
         ~init:Value.empty ~f:Fun.id)
  in
  put p "A";
  put p "B";
  put q "D";
  put q "E";
  put s "F"

let take_snapshot engine time =
  let sites =
    List.map
      (fun node ->
        let store = Engine.store engine ~node in
        let keys = Mvstore.keys store in
        ( site_names.(node),
          Engine.update_version engine ~node,
          Engine.read_version engine ~node,
          List.map (fun k -> (k, Mvstore.versions_of store ~key:k)) keys ))
      [ p; q; s ]
  in
  { snap_time = time; sites }

let collect_counters engine =
  let out = ref [] in
  List.iter
    (fun node ->
      let cnt = Engine.counters engine ~node in
      List.iter
        (fun v ->
          for other = 0 to 2 do
            let r = Counters.r cnt ~version:v ~dst:other in
            if r > 0 then
              out :=
                ( Printf.sprintf "R%d[%s->%s]" v site_names.(node)
                    site_names.(other),
                  r )
                :: !out;
            let c = Counters.c cnt ~version:v ~src:other in
            if c > 0 then
              out :=
                ( Printf.sprintf "C%d[%s->%s]" v site_names.(other)
                    site_names.(node),
                  c )
                :: !out
          done)
        (Counters.versions cnt))
    [ p; q; s ];
  List.sort compare !out

let run () =
  let sim = Sim.create ~seed:1 () in
  let trace = Trace.create () in
  let cfg =
    {
      (Engine.default_config ~nodes:3) with
      Engine.latency = Latency.Constant 0.2;
      think_time = 0.5;
      poll_interval = 0.5;
    }
  in
  let engine =
    Engine.create sim cfg ~trace ~node_names:site_names
      ~link_latency:(scripted_links ()) ()
  in
  preload engine;
  (* Transaction i (version 1): root at p updates A, spawns iq -> q (which
     updates D and E and spawns iqp -> p updating B) and is -> s (updates F). *)
  let iqp = Spec.subtxn p [ Op.Incr ("B", 1.) ] in
  let iq = Spec.subtxn ~children:[ iqp ] q [ Op.Incr ("D", 3.); Op.Incr ("E", 2.) ] in
  let is_ = Spec.subtxn s [ Op.Incr ("F", 4.) ] in
  let i_root = Spec.subtxn ~children:[ iq; is_ ] p [ Op.Incr ("A", 5.) ] in
  let spec_i = Spec.make ~id:1 ~label:"i" i_root in
  (* Transaction j (version 2): root at q updates D, spawns jp -> p. *)
  let jp = Spec.subtxn p [ Op.Incr ("A", 6.) ] in
  let j_root = Spec.subtxn ~children:[ jp ] q [ Op.Incr ("D", 7.) ] in
  let spec_j = Spec.make ~id:2 ~label:"j" j_root in
  (* Read transactions x (at p, reads A) and y (at q, reads D). *)
  let spec_x = Spec.make ~id:3 ~label:"x" (Spec.subtxn p [ Op.Read "A" ]) in
  let spec_y = Spec.make ~id:4 ~label:"y" (Spec.subtxn q [ Op.Read "D" ]) in
  let result_i = ref None
  and result_j = ref None
  and result_x = ref None
  and result_y = ref None
  and advancement = ref None in
  let snapshots = ref [] in
  List.iter
    (fun time ->
      Sim.schedule sim ~delay:time (fun () ->
          snapshots := take_snapshot engine time :: !snapshots))
    [ 12.0; 20.0; 28.0 ];
  Sim.spawn sim ~name:"table1-script" (fun () ->
      Sim.sleep sim 1.0;
      result_i := Some (Engine.submit engine spec_i);
      Sim.sleep sim 6.0 (* t = 7 *);
      result_x := Some (Engine.submit engine spec_x);
      Sim.sleep sim 2.0 (* t = 9 *);
      advancement := Some (Engine.advance engine);
      Sim.sleep sim 1.0 (* t = 10 *);
      result_j := Some (Engine.submit engine spec_j);
      Sim.sleep sim 7.0 (* t = 17 *);
      result_y := Some (Engine.submit engine spec_y));
  (match Sim.run sim ~until:60.0 () with
  | Sim.Completed | Sim.Hit_limit -> ()
  | Sim.Stalled names ->
      failwith
        (Printf.sprintf "Table1: stalled in [%s]" (String.concat "; " names)));
  let committed r =
    match !r with
    | Some ivar -> (
        match Ivar.peek ivar with
        | Some res -> Result.committed res
        | None -> false)
    | None -> false
  in
  let read_amount_zero r =
    match !r with
    | Some ivar -> (
        match Ivar.peek ivar with
        | Some res ->
            List.for_all
              (fun (_, (v : Value.t)) ->
                v.Value.amount = 0. && Value.Writers.is_empty v.Value.writers)
              res.Result.reads
        | None -> false)
    | None -> false
  in
  let snapshots =
    List.sort (fun a b -> compare a.snap_time b.snap_time) !snapshots
    @ [ take_snapshot engine (Sim.now sim) ]
  in
  {
    trace;
    snapshots;
    final_counters = collect_counters engine;
    advancement_completed =
      (match !advancement with Some iv -> Ivar.is_full iv | None -> false);
    read_version_after = Engine.read_version engine ~node:p;
    txn_i_committed = committed result_i;
    txn_j_committed = committed result_j;
    reads_saw_version0 = read_amount_zero result_x && read_amount_zero result_y;
  }

let render_trace replay =
  Trace.render replay.trace ~sites:[ "p"; "q"; "s"; "coord" ]

let render_snapshots replay =
  let buf = Buffer.create 512 in
  List.iter
    (fun snap ->
      Buffer.add_string buf
        (Printf.sprintf "-- state at t=%.0f --\n" snap.snap_time);
      List.iter
        (fun (site, vu, vr, keys) ->
          Buffer.add_string buf
            (Printf.sprintf "  site %s (vu=%d, vr=%d): " site vu vr);
          List.iter
            (fun (key, versions) ->
              Buffer.add_string buf
                (Printf.sprintf "%s{%s} " key
                   (String.concat ","
                      (List.map string_of_int (List.rev versions)))))
            keys;
          Buffer.add_char buf '\n')
        snap.sites)
    replay.snapshots;
  Buffer.contents buf
