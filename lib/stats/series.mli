(** Append-only (x, y) series, e.g. a metric sampled over virtual time.

    Used by experiments that sweep a parameter or sample a gauge during a
    run, then render the series as a table row or compute aggregates. *)

type t

(** [create ?name ()] is an empty series (default name [""]). *)
val create : ?name:string -> unit -> t

(** The name given at creation. *)
val name : t -> string

(** [add s ~x ~y] appends a point. [x] values are expected nondecreasing but
    this is not enforced. *)
val add : t -> x:float -> y:float -> unit

(** Number of points appended so far. *)
val length : t -> int

(** Points in insertion order. *)
val to_list : t -> (float * float) list

(** Mean of the y values; 0. when empty. *)
val mean_y : t -> float

(** Largest y value; 0. when empty. *)
val max_y : t -> float

(** Last point, if any. *)
val last : t -> (float * float) option

(** [resample s ~buckets] averages y over [buckets] equal-width x ranges,
    producing at most [buckets] points — handy for compact table output. *)
val resample : t -> buckets:int -> (float * float) list

(** [sparkline s ~buckets] renders the series as a one-line bar chart using
    Unicode block characters (▁▂▃▄▅▆▇█), one character per bucket, scaled
    to the series maximum. Empty series render as [""]; empty buckets as
    spaces. *)
val sparkline : t -> buckets:int -> string
