type t = {
  least : float;
  growth : float;
  log_growth : float;
  (* counts.(0) is the zero/negative bucket; counts.(i) for i >= 1 covers
     (least * growth^(i-2), least * growth^(i-1)]. *)
  mutable counts : int array;
  summary : Summary.t;
}

let create ?(least = 1e-6) ?(growth = 1.25) () =
  if least <= 0. then invalid_arg "Histogram.create: least must be positive";
  if growth <= 1. then invalid_arg "Histogram.create: growth must exceed 1";
  {
    least;
    growth;
    log_growth = log growth;
    counts = Array.make 64 0;
    summary = Summary.create ();
  }

(* Upper bound of bucket [i]. *)
let bound_of h i =
  if i = 0 then 0. else h.least *. (h.growth ** float_of_int (i - 1))

let bucket_of h x =
  if x <= 0. then 0
  else if x <= h.least then 1
  else begin
    let b = 2 + int_of_float (Float.floor (log (x /. h.least) /. h.log_growth)) in
    (* The documented ranges are upper-inclusive, but at exact bucket bounds
       (x = least * growth^k) the log lands on an integer and floor pushes x
       one bucket too high; log/(**) rounding can also disagree by one ulp in
       either direction. Settle against bound_of, the range's ground truth. *)
    if b > 1 && x <= bound_of h (b - 1) then b - 1
    else if x > bound_of h b then b + 1
    else b
  end

let add h x =
  Summary.add h.summary x;
  let b = bucket_of h x in
  if b >= Array.length h.counts then begin
    let ncounts = Array.make (b * 2) 0 in
    Array.blit h.counts 0 ncounts 0 (Array.length h.counts);
    h.counts <- ncounts
  end;
  h.counts.(b) <- h.counts.(b) + 1

let count h = Summary.count h.summary
let mean h = Summary.mean h.summary
let max h = if count h = 0 then 0. else Summary.max h.summary
let min h = if count h = 0 then 0. else Summary.min h.summary

let percentile h p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile";
  let n = count h in
  if n = 0 then 0.
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int n)))
    in
    let rec scan i seen =
      if i >= Array.length h.counts then max h
      else
        let seen = seen + h.counts.(i) in
        if seen >= rank then Float.min (bound_of h i) (max h) else scan (i + 1) seen
    in
    scan 0 0
  end

let merge a b =
  if a.least <> b.least || a.growth <> b.growth then
    invalid_arg "Histogram.merge: incompatible bucket layouts";
  let len = Stdlib.max (Array.length a.counts) (Array.length b.counts) in
  let counts = Array.make len 0 in
  Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) a.counts;
  Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) b.counts;
  { a with counts; summary = Summary.merge a.summary b.summary }

let pp ppf h =
  if count h = 0 then Format.fprintf ppf "empty"
  else
    Format.fprintf ppf "n=%d p50=%.4g p90=%.4g p99=%.4g max=%.4g" (count h)
      (percentile h 50.) (percentile h 90.) (percentile h 99.) (max h)
