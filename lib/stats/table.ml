type t = {
  title : string;
  columns : string list;
  mutable data : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; data = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row %S: expected %d cells, got %d" t.title
         (List.length t.columns) (List.length cells));
  t.data <- cells :: t.data

let rows t = List.length t.data

let to_string t =
  let all = t.columns :: List.rev t.data in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row row =
    "| " ^ String.concat " | " (List.mapi pad row) ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (List.init ncols (fun i -> String.make (widths.(i) + 2) '-'))
    ^ "|"
  in
  let body = List.map render_row (List.rev t.data) in
  String.concat "\n"
    (Printf.sprintf "### %s" t.title
    :: ""
    :: render_row t.columns
    :: sep
    :: body)
  ^ "\n"

let csv_cell cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if needs_quoting then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let row cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (row t.columns :: List.map row (List.rev t.data)) ^ "\n"

let print t = print_string (to_string t ^ "\n")

let cell_f x =
  if Float.is_integer x && Float.abs x < 1e7 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let cell_i = string_of_int

let cell_pct part total =
  if total = 0 then "n/a"
  else Printf.sprintf "%.1f%%" (100. *. float_of_int part /. float_of_int total)
