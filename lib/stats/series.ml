type t = { sname : string; mutable pts : (float * float) list; mutable n : int }

let create ?(name = "") () = { sname = name; pts = []; n = 0 }
let name s = s.sname

let add s ~x ~y =
  s.pts <- (x, y) :: s.pts;
  s.n <- s.n + 1

let length s = s.n
let to_list s = List.rev s.pts

let mean_y s =
  if s.n = 0 then 0.
  else List.fold_left (fun acc (_, y) -> acc +. y) 0. s.pts /. float_of_int s.n

let max_y s = List.fold_left (fun acc (_, y) -> Float.max acc y) 0. s.pts
let last s = match s.pts with [] -> None | p :: _ -> Some p

let sparkline s ~buckets =
  if buckets <= 0 then invalid_arg "Series.sparkline: buckets must be positive";
  match to_list s with
  | [] -> ""
  | pts ->
      let xs = List.map fst pts in
      let x0 = List.fold_left Float.min infinity xs in
      let x1 = List.fold_left Float.max neg_infinity xs in
      let width = if x1 > x0 then (x1 -. x0) /. float_of_int buckets else 1. in
      let sums = Array.make buckets 0. and counts = Array.make buckets 0 in
      List.iter
        (fun (x, y) ->
          let i = min (buckets - 1) (int_of_float ((x -. x0) /. width)) in
          sums.(i) <- sums.(i) +. y;
          counts.(i) <- counts.(i) + 1)
        pts;
      let top =
        Array.fold_left Float.max 0.
          (Array.mapi
             (fun i sum -> if counts.(i) = 0 then 0. else sum /. float_of_int counts.(i))
             sums)
      in
      let glyphs = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
      let buf = Buffer.create (buckets * 3) in
      for i = 0 to buckets - 1 do
        if counts.(i) = 0 then Buffer.add_char buf ' '
        else begin
          let mean = sums.(i) /. float_of_int counts.(i) in
          let level =
            if top <= 0. then 0
            else min 7 (int_of_float (mean /. top *. 7.999))
          in
          Buffer.add_string buf glyphs.(level)
        end
      done;
      Buffer.contents buf

let resample s ~buckets =
  if buckets <= 0 then invalid_arg "Series.resample: buckets must be positive";
  match to_list s with
  | [] -> []
  | pts ->
      let xs = List.map fst pts in
      let x0 = List.fold_left Float.min infinity xs in
      let x1 = List.fold_left Float.max neg_infinity xs in
      if x1 <= x0 then [ (x0, mean_y s) ]
      else begin
        let width = (x1 -. x0) /. float_of_int buckets in
        let sums = Array.make buckets 0. and counts = Array.make buckets 0 in
        let place (x, y) =
          let i = min (buckets - 1) (int_of_float ((x -. x0) /. width)) in
          sums.(i) <- sums.(i) +. y;
          counts.(i) <- counts.(i) + 1
        in
        List.iter place pts;
        let out = ref [] in
        for i = buckets - 1 downto 0 do
          if counts.(i) > 0 then
            out :=
              ( x0 +. ((float_of_int i +. 0.5) *. width),
                sums.(i) /. float_of_int counts.(i) )
              :: !out
        done;
        !out
      end
