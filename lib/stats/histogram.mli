(** Log-bucketed latency histogram with percentile queries.

    Buckets grow geometrically from a configurable smallest resolution, HDR
    style: cheap to record into, accurate to within the bucket growth factor
    when reporting percentiles. Non-positive observations land in a dedicated
    zero bucket. *)

type t

(** [create ?least ?growth ()] is an empty histogram. [least] is the upper
    bound of the first positive bucket (default [1e-6]); [growth] the
    geometric factor between bucket bounds (default [1.25]).
    @raise Invalid_argument if [least <= 0.] or [growth <= 1.]. *)
val create : ?least:float -> ?growth:float -> unit -> t

(** [add h x] records one observation. *)
val add : t -> float -> unit

(** [bucket_of h x] is the bucket index recording [x]: 0 for non-positive
    values, 1 for (0, least], and for i >= 2 the range
    (least·growth^(i-2), least·growth^(i-1)] — upper-inclusive, so an exact
    bucket bound lands in the bucket it bounds. *)
val bucket_of : t -> float -> int

(** [bound_of h i] is the inclusive upper bound of bucket [i] (0. for the
    zero bucket). *)
val bound_of : t -> int -> float

(** Number of observations recorded. *)
val count : t -> int

(** Exact mean of the observations (tracked outside the buckets). *)
val mean : t -> float

(** Exact largest observation; [neg_infinity] when empty. *)
val max : t -> float

(** Exact smallest observation; [infinity] when empty. *)
val min : t -> float

(** [percentile h p] with [0. <= p <= 100.] is an upper bound on the value at
    the [p]-th percentile; 0. when empty. *)
val percentile : t -> float -> float

(** [merge a b] is a histogram over both observation streams.
    @raise Invalid_argument if bucket layouts differ. *)
val merge : t -> t -> t

(** "p50=… p90=… p99=… max=…" one-liner. *)
val pp : Format.formatter -> t -> unit
