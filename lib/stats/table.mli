(** Plain-text table rendering for bench and experiment reports.

    Produces GitHub-flavoured markdown tables (also valid as aligned
    monospace output) from a header row and data rows. Cells are strings;
    helpers format numbers consistently. *)

type t

(** [create ~title ~columns] is an empty table. *)
val create : title:string -> columns:string list -> t

(** [add_row t cells] appends a row.
    @raise Invalid_argument if the arity differs from the header. *)
val add_row : t -> string list -> unit

(** Number of data rows. *)
val rows : t -> int

(** Render with column alignment, preceded by the title. *)
val to_string : t -> string

(** RFC-4180-style CSV (header row first; cells containing commas, quotes
    or newlines are quoted). The title is not included. *)
val to_csv : t -> string

(** [print t] writes {!to_string} to stdout followed by a newline. *)
val print : t -> unit

(** Format a float compactly: 4 significant digits, no trailing noise. *)
val cell_f : float -> string

(** Format an integer. *)
val cell_i : int -> string

(** Format a percentage out of a total, e.g. [cell_pct 3 12 = "25.0%"]. *)
val cell_pct : int -> int -> string
