type t = (string, int) Hashtbl.t

let create () : t = Hashtbl.create 16

let incr t name ?(by = 1) () =
  let cur = match Hashtbl.find_opt t name with Some v -> v | None -> 0 in
  Hashtbl.replace t name (cur + by)

let get t name = match Hashtbl.find_opt t name with Some v -> v | None -> 0

let to_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge a b =
  let out = create () in
  List.iter (fun (k, v) -> incr out k ~by:v ()) (to_list a);
  List.iter (fun (k, v) -> incr out k ~by:v ()) (to_list b);
  out

let reset = Hashtbl.reset

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
    (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v)
    ppf (to_list t)
