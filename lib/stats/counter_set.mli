(** Named monotone counters for instrumentation.

    A lightweight string-keyed bag of integer counters used by engines to
    report message counts, dual-writes, copies, aborts, etc. *)

type t

(** An empty counter set. *)
val create : unit -> t

(** [incr t name ?by ()] adds [by] (default 1) to [name], creating it at 0. *)
val incr : t -> string -> ?by:int -> unit -> unit

(** [get t name] is the counter's value, 0 when absent. *)
val get : t -> string -> int

(** All (name, value) pairs sorted by name. *)
val to_list : t -> (string * int) list

(** [merge a b] sums counters pointwise into a fresh set. *)
val merge : t -> t -> t

(** [reset t] zeroes every counter (names are kept). *)
val reset : t -> unit

(** Prints "name=value" pairs sorted by name. *)
val pp : Format.formatter -> t -> unit
