type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable mn : float;
  mutable mx : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; mn = infinity; mx = neg_infinity }

let add s x =
  s.n <- s.n + 1;
  let delta = x -. s.mean in
  s.mean <- s.mean +. (delta /. float_of_int s.n);
  s.m2 <- s.m2 +. (delta *. (x -. s.mean));
  if x < s.mn then s.mn <- x;
  if x > s.mx then s.mx <- x

let count s = s.n
let mean s = if s.n = 0 then 0. else s.mean
let variance s = if s.n < 2 then 0. else s.m2 /. float_of_int (s.n - 1)
let stddev s = sqrt (variance s)
let min s = s.mn
let max s = s.mx
let total s = s.mean *. float_of_int s.n

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      mn = Float.min a.mn b.mn;
      mx = Float.max a.mx b.mx;
    }
  end

let pp ppf s =
  if s.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" s.n (mean s)
      (stddev s) s.mn s.mx
