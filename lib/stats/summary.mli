(** Streaming univariate summary (count / mean / variance / min / max).

    Uses Welford's online algorithm, so it is numerically stable and O(1)
    per observation. *)

type t

(** An empty summary. *)
val create : unit -> t

(** [add s x] records observation [x]. *)
val add : t -> float -> unit

(** Number of observations recorded. *)
val count : t -> int

(** Mean of the observations; 0. when empty. *)
val mean : t -> float

(** Unbiased sample variance; 0. with fewer than two observations. *)
val variance : t -> float

(** Sample standard deviation. *)
val stddev : t -> float

val min : t -> float
(** Minimum observation; [infinity] when empty. *)

val max : t -> float
(** Maximum observation; [neg_infinity] when empty. *)

val total : t -> float
(** Sum of the observations. *)

(** [merge a b] is a summary equivalent to observing both streams. *)
val merge : t -> t -> t

(** "n=… mean=… sd=… min=… max=…" one-liner. *)
val pp : Format.formatter -> t -> unit
