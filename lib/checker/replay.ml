module Spec = Txn.Spec
module Op = Txn.Op
module Result = Txn.Result
module Value = Txn.Value

type mismatch = { key : string; expected : float; actual : float }

type report = {
  keys_checked : int;
  keys_skipped : int;
  mismatches : mismatch list;
  mismatch_count : int;
}

let rec fold_ops f acc (st : Spec.subtxn) =
  let acc = List.fold_left f acc st.Spec.ops in
  List.fold_left (fold_ops f) acc st.Spec.children

(* Keys whose writes include a non-commuting Overwrite anywhere in the
   history (committed or not) are excluded from prediction. *)
let overwritten_keys history =
  let keys = Hashtbl.create 16 in
  List.iter
    (fun ((spec : Spec.t), _res) ->
      ignore
        (fold_ops
           (fun () op ->
             match op with
             | Op.Overwrite (k, _) -> Hashtbl.replace keys k ()
             | Op.Read _ | Op.Incr _ | Op.Append _ -> ())
           () spec.Spec.root))
    history;
  keys

let expected history =
  let skip = overwritten_keys history in
  let sums = Hashtbl.create 256 in
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if spec.Spec.kind = Spec.Commuting && Result.committed res then
        ignore
          (fold_ops
             (fun () op ->
               match op with
               | Op.Incr (k, d) when not (Hashtbl.mem skip k) ->
                   let cur =
                     match Hashtbl.find_opt sums k with
                     | Some v -> v
                     | None -> 0.
                   in
                   Hashtbl.replace sums k (cur +. d)
               | Op.Append (k, _) when not (Hashtbl.mem skip k) ->
                   (* Appends don't change the amount but must make the key
                      participate in the check. *)
                   if not (Hashtbl.mem sums k) then Hashtbl.replace sums k 0.
               | Op.Read _ | Op.Incr _ | Op.Append _ | Op.Overwrite _ -> ())
             () spec.Spec.root))
    history;
  sums

let check history ~lookup =
  let skip = overwritten_keys history in
  let sums = expected history in
  let mismatches = ref [] in
  let mismatch_count = ref 0 in
  let keys_checked = ref 0 in
  (* Check keys in sorted order: the mismatch list is capped at 20 and
     escapes into the report, so hash-order iteration would make which
     mismatches are reported layout-dependent. *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) sums []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (key, want) ->
         incr keys_checked;
         let actual =
           match lookup key with
           | Some (v : Value.t) -> v.Value.amount
           | None -> 0.
         in
         if Float.abs (actual -. want) > 1e-6 then begin
           incr mismatch_count;
           if List.length !mismatches < 20 then
             mismatches := { key; expected = want; actual } :: !mismatches
         end);
  {
    keys_checked = !keys_checked;
    keys_skipped = Hashtbl.length skip;
    mismatches = List.rev !mismatches;
    mismatch_count = !mismatch_count;
  }

let clean r = r.mismatch_count = 0

let pp ppf r =
  Format.fprintf ppf "keys=%d skipped=%d mismatches=%d%s" r.keys_checked
    r.keys_skipped r.mismatch_count
    (if clean r then " (clean)" else " (VIOLATIONS)")
