module Spec = Txn.Spec
module Result = Txn.Result
module Value = Txn.Value
module Op = Txn.Op

type edge_kind = Reads_from | Anti_dependency | Version_order

type edge = { src : int; dst : int; key : string; kind : edge_kind }

type report = {
  txns : int;
  readers : int;
  writers : int;
  edges : int;
  rf_edges : int;
  anti_edges : int;
  ww_edges : int;
  unknown_count : int;
  unknown_tags : (int * string * int) list;
  cycle : edge list option;
}

module Int_set = Set.Make (Int)

let has_effect (res : Result.t) =
  match res.Result.outcome with
  | Result.Committed -> true
  | Result.Aborted "compensated" -> true
  | Result.Aborted _ -> false

(* Per-key write classification of a spec: key -> wrote_overwrite. A key
   counts as overwritten if any operation on it anywhere in the tree is an
   [Overwrite]. *)
let write_kinds (spec : Spec.t) =
  let tbl = Hashtbl.create 8 in
  let rec walk (st : Spec.subtxn) =
    List.iter
      (fun op ->
        if Op.is_write op then begin
          let key = Op.key op in
          let prev =
            match Hashtbl.find_opt tbl key with Some b -> b | None -> false
          in
          Hashtbl.replace tbl key (prev || not (Op.commuting_write op))
        end)
      st.Spec.ops;
    List.iter walk st.Spec.children
  in
  walk spec.Spec.root;
  tbl

(* ------------------------------------------------------------ graph *)

type graph = {
  (* adjacency, deduplicated: src -> dst set *)
  adj : (int, Int_set.t ref) Hashtbl.t;
  (* representative edge per (src, dst, kind); first inserted wins *)
  edge_tbl : (int * int * edge_kind, edge) Hashtbl.t;
  mutable rf : int;
  mutable anti : int;
  mutable ww : int;
}

let add_edge g ~src ~dst ~key ~kind =
  if src <> dst && not (Hashtbl.mem g.edge_tbl (src, dst, kind)) then begin
    Hashtbl.replace g.edge_tbl (src, dst, kind) { src; dst; key; kind };
    (match kind with
    | Reads_from -> g.rf <- g.rf + 1
    | Anti_dependency -> g.anti <- g.anti + 1
    | Version_order -> g.ww <- g.ww + 1);
    let set =
      match Hashtbl.find_opt g.adj src with
      | Some s -> s
      | None ->
          let s = ref Int_set.empty in
          Hashtbl.replace g.adj src s;
          s
    in
    set := Int_set.add dst !set
  end

let succs g v =
  match Hashtbl.find_opt g.adj v with
  | Some s -> Int_set.elements !s
  | None -> []

(* An edge src -> dst of any kind, preferring reads-from for readability of
   witnesses. *)
let edge_between g src dst =
  match Hashtbl.find_opt g.edge_tbl (src, dst, Reads_from) with
  | Some e -> Some e
  | None -> (
      match Hashtbl.find_opt g.edge_tbl (src, dst, Anti_dependency) with
      | Some e -> Some e
      | None -> Hashtbl.find_opt g.edge_tbl (src, dst, Version_order))

(* ----------------------------------------------------- cycle search *)

(* Iterative Tarjan: strongly-connected components of the nodes reachable
   in [g], starting from every node in [nodes]. *)
let sccs g nodes =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let push v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ()
  in
  let visit root =
    if not (Hashtbl.mem index root) then begin
      let call = Stack.create () in
      push root;
      Stack.push (root, ref (succs g root)) call;
      while not (Stack.is_empty call) do
        let v, rest = Stack.top call in
        match !rest with
        | w :: tl ->
            rest := tl;
            if not (Hashtbl.mem index w) then begin
              push w;
              Stack.push (w, ref (succs g w)) call
            end
            else if Hashtbl.mem on_stack w then
              Hashtbl.replace lowlink v
                (min (Hashtbl.find lowlink v) (Hashtbl.find index w))
        | [] ->
            ignore (Stack.pop call);
            if Hashtbl.find lowlink v = Hashtbl.find index v then begin
              let rec pop acc =
                match !stack with
                | w :: tl ->
                    stack := tl;
                    Hashtbl.remove on_stack w;
                    if w = v then w :: acc else pop (w :: acc)
                | [] -> acc
              in
              out := pop [] :: !out
            end;
            (match Stack.top_opt call with
            | Some (parent, _) ->
                Hashtbl.replace lowlink parent
                  (min (Hashtbl.find lowlink parent) (Hashtbl.find lowlink v))
            | None -> ())
      done
    end
  in
  List.iter visit nodes;
  !out

(* Shortest cycle through [start] staying inside [members]: BFS until an
   edge closes back on [start]. Returns the node sequence of the cycle. *)
let shortest_cycle_through g members start =
  let parent = Hashtbl.create 16 in
  let q = Queue.create () in
  Queue.add start q;
  Hashtbl.replace parent start start;
  let found = ref None in
  (try
     while not (Queue.is_empty q) do
       let u = Queue.pop q in
       List.iter
         (fun w ->
           if w = start then begin
             (* Reconstruct start ... u, then close with u -> start. *)
             let rec back v acc =
               if v = start then start :: acc
               else back (Hashtbl.find parent v) (v :: acc)
             in
             found := Some (back u []);
             raise Exit
           end
           else if Int_set.mem w members && not (Hashtbl.mem parent w) then begin
             Hashtbl.replace parent w u;
             Queue.add w q
           end)
         (succs g u)
     done
   with Exit -> ());
  !found

(* Minimal witness: smallest SCC with >= 2 nodes, then the shortest cycle
   through any of its nodes. *)
let find_cycle g nodes =
  let multi =
    List.filter (fun scc -> List.length scc >= 2) (sccs g nodes)
  in
  match
    List.sort (fun a b -> compare (List.length a) (List.length b)) multi
  with
  | [] -> None
  | scc :: _ ->
      let members = Int_set.of_list scc in
      let best = ref None in
      (try
         List.iter
           (fun start ->
             match shortest_cycle_through g members start with
             | Some c -> (
                 match !best with
                 | Some b when List.length b <= List.length c -> ()
                 | _ ->
                     best := Some c;
                     if List.length c = 2 then raise Exit)
             | None -> ())
           scc
       with Exit -> ());
      (match !best with
      | None -> None
      | Some cyc ->
          (* Node sequence -> edge list, wrapping around. *)
          let arr = Array.of_list cyc in
          let n = Array.length arr in
          let edges =
            List.init n (fun i ->
                let src = arr.(i) and dst = arr.((i + 1) mod n) in
                match edge_between g src dst with
                | Some e -> e
                | None ->
                    (* Unreachable: the BFS walked real edges. *)
                    { src; dst; key = "?"; kind = Reads_from })
          in
          Some edges)

(* ----------------------------------------------------------- certify *)

let certify ?shard_of_node history =
  let g =
    { adj = Hashtbl.create 256; edge_tbl = Hashtbl.create 1024;
      rf = 0; anti = 0; ww = 0 }
  in
  (* A writer's shard (sharded histories only): update trees are confined
     to one shard, so the root node determines it. Version numbers are
     per-shard frontiers — comparable only within a shard. *)
  let writer_shard (spec : Spec.t) =
    match shard_of_node with
    | None -> 0
    | Some f -> f spec.Spec.root.Spec.node
  in
  (* Effect-ful writers: id -> (version, write kinds). *)
  let writer_info = Hashtbl.create 256 in
  (* key -> (writer id, version, writer shard, overwrote) list *)
  let writers_of_key : (string, (int * int * int * bool) list) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if spec.Spec.kind <> Spec.Read_only && has_effect res then begin
        let kinds = write_kinds spec in
        Hashtbl.replace writer_info spec.Spec.id ();
        Hashtbl.iter
          (fun key ow ->
            let cur =
              match Hashtbl.find_opt writers_of_key key with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace writers_of_key key
              ((spec.Spec.id, res.Result.version, writer_shard spec, ow) :: cur))
          kinds
      end)
    history;
  (* Version-order edges: conflicting writer pairs at different versions
     of the same shard's frontier, lower version first. Commuting pairs
     are unordered, and cross-shard pairs are never ordered by raw version
     number (shard frontiers advance independently, so equal numbers name
     different epochs — any real ordering between such writers surfaces
     through reads-from/anti-dependency edges instead). *)
  Hashtbl.iter
    (fun key ws ->
      let rec pairs = function
        | [] -> ()
        | (id1, v1, s1, ow1) :: rest ->
            List.iter
              (fun (id2, v2, s2, ow2) ->
                if s1 = s2 && v1 <> v2 && (ow1 || ow2) then begin
                  let src, dst = if v1 < v2 then (id1, id2) else (id2, id1) in
                  add_edge g ~src ~dst ~key ~kind:Version_order
                end)
              rest;
            pairs rest
      in
      pairs ws)
    writers_of_key;
  (* Reads-from and anti-dependency edges, plus unknown-tag accounting.
     Checked per observation (not unioned per key), so a non-repeatable
     read inside one transaction closes a two-edge cycle. *)
  let readers = ref 0 in
  let unknown_count = ref 0 in
  let unknown_tags = ref [] in
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if Result.committed res && res.Result.reads <> [] then begin
        incr readers;
        let rid = spec.Spec.id in
        List.iter
          (fun (key, (value : Value.t)) ->
            let seen = value.Value.writers in
            (* Observed tags: reads-from, or unknown if unaccounted. *)
            Value.Writers.iter
              (fun w ->
                if w <> rid then
                  if Hashtbl.mem writer_info w then
                    add_edge g ~src:w ~dst:rid ~key ~kind:Reads_from
                  else begin
                    incr unknown_count;
                    if List.length !unknown_tags < 20 then
                      unknown_tags := (rid, key, w) :: !unknown_tags
                  end)
              seen;
            (* Effect-ful writers of this key whose tag is absent from this
               observation: the read happened first. *)
            List.iter
              (fun (w, _, _, _) ->
                if w <> rid && not (Value.Writers.mem w seen) then
                  add_edge g ~src:rid ~dst:w ~key ~kind:Anti_dependency)
              (match Hashtbl.find_opt writers_of_key key with
              | Some l -> l
              | None -> []))
          res.Result.reads
      end)
    history;
  (* Node set: writers plus committed readers (readers that also write are
     already present). *)
  let nodes = Hashtbl.create 256 in
  Hashtbl.iter (fun id () -> Hashtbl.replace nodes id ()) writer_info;
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if Result.committed res && res.Result.reads <> [] then
        Hashtbl.replace nodes spec.Spec.id ())
    history;
  (* Sorted: the node enumeration seeds the SCC/BFS walk, so hash-order
     iteration would make the chosen cycle witness layout-dependent. *)
  let node_list =
    Hashtbl.fold (fun id () acc -> id :: acc) nodes [] |> List.sort compare
  in
  let cycle = find_cycle g node_list in
  {
    txns = List.length node_list;
    readers = !readers;
    writers = Hashtbl.length writer_info;
    edges = g.rf + g.anti + g.ww;
    rf_edges = g.rf;
    anti_edges = g.anti;
    ww_edges = g.ww;
    unknown_count = !unknown_count;
    unknown_tags = List.rev !unknown_tags;
    cycle;
  }

let serializable r = r.cycle = None

let pp_kind ppf = function
  | Reads_from -> Format.pp_print_string ppf "rf"
  | Anti_dependency -> Format.pp_print_string ppf "rw"
  | Version_order -> Format.pp_print_string ppf "ww"

let pp_edge ppf e =
  Format.fprintf ppf "%d -%a[%s]-> %d" e.src pp_kind e.kind e.key e.dst

let pp_witness ppf r =
  match r.cycle with
  | None -> ()
  | Some edges ->
      Format.fprintf ppf "@[<v 2>MVSG cycle (%d edges):" (List.length edges);
      List.iter (fun e -> Format.fprintf ppf "@ %a" pp_edge e) edges;
      Format.fprintf ppf "@]"

let pp ppf r =
  Format.fprintf ppf
    "txns=%d (w=%d r=%d) edges=%d (rf=%d rw=%d ww=%d) unknown=%d %s"
    r.txns r.writers r.readers r.edges r.rf_edges r.anti_edges r.ww_edges
    r.unknown_count
    (if serializable r then "1SR" else "NOT-1SR");
  if r.cycle <> None then Format.fprintf ppf "@ %a" pp_witness r
