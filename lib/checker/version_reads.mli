(** Exact version-read checker — Theorem 4.1 made executable.

    The 3V serialization order places transactions by version number, with
    updates of a version preceding the reads of that version. Because
    commuting updates accumulate (a write of version w updates every copy
    with version ≥ w), the value a read transaction of version [v] observes
    for key [k] must carry {e exactly} the writer set

    {[ { u | u is an effect-ful update, version(u) <= v, u wrote k } ]}

    — no update of version ≤ v may be missing (phase 3 only switches reads
    to a version whose updates have all terminated) and no update of
    version > v may have leaked in (reads never see the current update
    version). This is strictly stronger than atomic visibility: it pins
    down {e which} serial prefix every read observed.

    Only meaningful for the 3V engine (baselines don't stamp versions the
    same way). Requires the history to be complete (every submitted
    transaction resolved). *)

type violation = {
  read_txn : int;
  key : string;
  version : int;  (** the read transaction's version *)
  missing : int list;  (** writers ≤ version not observed *)
  leaked_future : int list;
      (** observed writers known to have committed at a version > v — the
          read saw past its version fence *)
  unknown : int list;
      (** observed writer tags no effect-ful update in the history accounts
          for — e.g. a dirty read of an aborted transaction's write *)
}

type report = {
  reads_checked : int;
  observations : int;  (** (read, key) pairs compared *)
  violations : violation list;  (** capped at 20 *)
  violation_count : int;
}

(** [check ?vector ?shard_of_node history] compares every committed
    read's observations against the exact writer sets Theorem 4.1
    predicts. For sharded histories pass [vector] (txn id → the read
    vector assigned at submission, e.g. {!Threev.Engine.assigned_vector})
    and [shard_of_node]: each key is then fenced by the component of the
    shard hosting it (found via the spec tree) instead of the root's
    version — versions from different shards are incomparable. The
    defaults ([vector] constantly [None]) reproduce the single-frontier
    check exactly. *)
val check :
  ?vector:(int -> int array option) ->
  ?shard_of_node:(int -> int) ->
  (Txn.Spec.t * Txn.Result.t) list ->
  report

(** True when no violation was found. *)
val clean : report -> bool

(** Summary line plus one line per (capped) violation. *)
val pp : Format.formatter -> report -> unit
