module Spec = Txn.Spec
module Result = Txn.Result
module Value = Txn.Value

type report = {
  reads_checked : int;
  pairs_checked : int;
  partial_reads : int;
  dirty_reads : int;
  examples : (int * int) list;
}

(* An update transaction "has effect" if it committed, or aborted through
   compensation (compensation leaves its writer tags on every key it
   touched, with a net-zero amount — still atomic from a reader's view). *)
let has_effect (res : Result.t) =
  match res.Result.outcome with
  | Result.Committed -> true
  | Result.Aborted "compensated" -> true
  | Result.Aborted _ -> false

module Int_set = Set.Make (Int)
module Str_map = Map.Make (String)

let check history =
  (* Index effect-ful updates: txn id -> written key set; key -> writer ids. *)
  let update_keys = Hashtbl.create 256 in
  let writers_by_key = Hashtbl.create 256 in
  let effectless = Hashtbl.create 64 in
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if spec.Spec.kind <> Spec.Read_only then begin
        if has_effect res then begin
          let keys = Spec.keys_written spec in
          Hashtbl.replace update_keys spec.Spec.id keys;
          List.iter
            (fun k ->
              let cur =
                match Hashtbl.find_opt writers_by_key k with
                | Some ids -> ids
                | None -> []
              in
              Hashtbl.replace writers_by_key k (spec.Spec.id :: cur))
            keys
        end
        else Hashtbl.replace effectless spec.Spec.id ()
      end)
    history;
  let reads_checked = ref 0 in
  let pairs_checked = ref 0 in
  let partial_reads = ref 0 in
  let dirty_reads = ref 0 in
  let examples = ref [] in
  let note_example r u =
    if List.length !examples < 10 then examples := (r, u) :: !examples
  in
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if spec.Spec.kind = Spec.Read_only && Result.committed res then begin
        incr reads_checked;
        (* Writer tags this read observed, unioned per key. *)
        let observed =
          List.fold_left
            (fun acc (key, value) ->
              let prev =
                match Str_map.find_opt key acc with
                | Some s -> s
                | None -> Int_set.empty
              in
              let tags =
                Value.Writers.fold Int_set.add value.Value.writers prev
              in
              Str_map.add key tags acc)
            Str_map.empty res.Result.reads
        in
        (* Dirty reads: any observed tag belonging to an effect-less abort. *)
        Str_map.iter
          (fun _key tags ->
            Int_set.iter
              (fun id ->
                if Hashtbl.mem effectless id then begin
                  incr dirty_reads;
                  note_example spec.Spec.id id
                end)
              tags)
          observed;
        (* Candidate updates: those writing any key this read looked at. *)
        let candidates =
          Str_map.fold
            (fun key _ acc ->
              match Hashtbl.find_opt writers_by_key key with
              | None -> acc
              | Some ids -> List.fold_left (fun a i -> Int_set.add i a) acc ids)
            observed Int_set.empty
        in
        Int_set.iter
          (fun u ->
            match Hashtbl.find_opt update_keys u with
            | None -> ()
            | Some written ->
                let overlap =
                  List.filter (fun k -> Str_map.mem k observed) written
                in
                if List.length overlap >= 2 then begin
                  incr pairs_checked;
                  let seen =
                    List.filter
                      (fun k ->
                        Int_set.mem u (Str_map.find k observed))
                      overlap
                  in
                  let n_seen = List.length seen in
                  if n_seen > 0 && n_seen < List.length overlap then begin
                    incr partial_reads;
                    note_example spec.Spec.id u
                  end
                end)
          candidates
      end)
    history;
  {
    reads_checked = !reads_checked;
    pairs_checked = !pairs_checked;
    partial_reads = !partial_reads;
    dirty_reads = !dirty_reads;
    examples = List.rev !examples;
  }

let clean r = r.partial_reads = 0 && r.dirty_reads = 0

let pp ppf r =
  Format.fprintf ppf
    "reads=%d pairs=%d partial=%d dirty=%d%s" r.reads_checked r.pairs_checked
    r.partial_reads r.dirty_reads
    (if clean r then " (clean)" else " (VIOLATIONS)")
