module Spec = Txn.Spec
module Result = Txn.Result
module Value = Txn.Value

type report = {
  reads : int;
  reads_with_misses : int;
  missed_total : int;
  mean_missed : float;
  mean_lag : float;
  max_lag : float;
}

module Int_set = Set.Make (Int)
module Str_map = Map.Make (String)

let measure history =
  (* Committed updates indexed by key, with settlement times. *)
  let settle_time = Hashtbl.create 256 in
  let writers_by_key = Hashtbl.create 256 in
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if spec.Spec.kind <> Spec.Read_only && Result.committed res then begin
        Hashtbl.replace settle_time spec.Spec.id res.Result.complete_time;
        List.iter
          (fun k ->
            let cur =
              match Hashtbl.find_opt writers_by_key k with
              | Some ids -> ids
              | None -> []
            in
            Hashtbl.replace writers_by_key k (spec.Spec.id :: cur))
          (Spec.keys_written spec)
      end)
    history;
  let reads = ref 0 in
  let reads_with_misses = ref 0 in
  let missed_total = ref 0 in
  let lag_sum = ref 0. in
  let max_lag = ref 0. in
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if spec.Spec.kind = Spec.Read_only && Result.committed res then begin
        incr reads;
        let observed =
          List.fold_left
            (fun acc (key, value) ->
              let prev =
                match Str_map.find_opt key acc with
                | Some s -> s
                | None -> Int_set.empty
              in
              Str_map.add key
                (Value.Writers.fold Int_set.add value.Value.writers prev)
                acc)
            Str_map.empty res.Result.reads
        in
        let candidates =
          Str_map.fold
            (fun key _ acc ->
              match Hashtbl.find_opt writers_by_key key with
              | None -> acc
              | Some ids -> List.fold_left (fun a i -> Int_set.add i a) acc ids)
            observed Int_set.empty
        in
        let oldest_miss = ref None in
        let misses = ref 0 in
        Int_set.iter
          (fun u ->
            match Hashtbl.find_opt settle_time u with
            | Some settled when settled <= res.Result.submit_time ->
                let seen =
                  Str_map.exists (fun _ tags -> Int_set.mem u tags) observed
                in
                if not seen then begin
                  incr misses;
                  oldest_miss :=
                    Some
                      (match !oldest_miss with
                      | None -> settled
                      | Some prev -> Float.min prev settled)
                end
            | _ -> ())
          candidates;
        if !misses > 0 then begin
          incr reads_with_misses;
          missed_total := !missed_total + !misses;
          match !oldest_miss with
          | Some settled ->
              let lag = res.Result.submit_time -. settled in
              lag_sum := !lag_sum +. lag;
              if lag > !max_lag then max_lag := lag
          | None -> ()
        end
      end)
    history;
  {
    reads = !reads;
    reads_with_misses = !reads_with_misses;
    missed_total = !missed_total;
    mean_missed =
      (if !reads = 0 then 0. else float_of_int !missed_total /. float_of_int !reads);
    mean_lag =
      (if !reads_with_misses = 0 then 0.
       else !lag_sum /. float_of_int !reads_with_misses);
    max_lag = !max_lag;
  }

let pp ppf r =
  Format.fprintf ppf "reads=%d missed/read=%.2f mean_lag=%.4fs max_lag=%.4fs"
    r.reads r.mean_missed r.mean_lag r.max_lag
