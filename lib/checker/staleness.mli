(** Read staleness measurement.

    Versioned schemes trade read freshness for coordination avoidance; this
    module quantifies the trade. For each committed read-only transaction
    [r], an update [u] is {e applicable} when it settled
    ([complete_time ≤ r.submit_time]) and wrote at least one key [r] read;
    it is {e missed} when [r] observed it on none of those keys. We report
    the average number of missed updates per read and the age of the oldest
    miss — "how far behind" queries run, the quantity the paper's §7 says
    the user controls by choosing when to advance versions. *)

type report = {
  reads : int;  (** committed read-only transactions measured *)
  reads_with_misses : int;
  missed_total : int;
  mean_missed : float;  (** missed updates per read *)
  mean_lag : float;  (** mean age (s) of the oldest miss, over reads with misses *)
  max_lag : float;  (** worst-case age of a missed update *)
}

(** [measure history] computes the staleness report of a finished run. *)
val measure : (Txn.Spec.t * Txn.Result.t) list -> report

(** One-line summary: reads, mean missed, mean/max lag. *)
val pp : Format.formatter -> report -> unit
