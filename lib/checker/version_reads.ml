module Spec = Txn.Spec
module Result = Txn.Result
module Value = Txn.Value

type violation = {
  read_txn : int;
  key : string;
  version : int;
  missing : int list;
  leaked_future : int list;
  unknown : int list;
}

type report = {
  reads_checked : int;
  observations : int;
  violations : violation list;
  violation_count : int;
}

module Int_set = Set.Make (Int)

let has_effect (res : Result.t) =
  match res.Result.outcome with
  | Result.Committed -> true
  | Result.Aborted "compensated" -> true
  | Result.Aborted _ -> false

(* Per-shard fencing for sharded histories: a cross-shard read carries one
   read version per shard (its assigned vector), so key [k] must be fenced
   by the component of the shard {e hosting} [k] — the root's version is
   only that one component. The hosting shard is read off the spec tree:
   the subtransactions whose ops read [k] name the nodes involved, and
   [shard_of_node] maps those to components. Writers of [k] all live in
   [k]'s shard (sharded engines reject cross-shard update trees), so the
   per-component comparison stays exact. *)
let fence_of ~vector ~shard_of_node (spec : Spec.t) ~default key =
  match vector spec.Spec.id with
  | None -> default
  | Some vec ->
      let fence = ref (-1) in
      let rec scan (st : Spec.subtxn) =
        if
          List.exists
            (function Txn.Op.Read k -> k = key | _ -> false)
            st.Spec.ops
        then begin
          let s = shard_of_node st.Spec.node in
          if s >= 0 && s < Array.length vec && vec.(s) > !fence then
            fence := vec.(s)
        end;
        List.iter scan st.Spec.children
      in
      scan spec.Spec.root;
      if !fence < 0 then default else !fence

let check ?(vector = fun _ -> None) ?(shard_of_node = fun _ -> 0) history =
  (* For each key: the effect-ful updates that wrote it, with their
     versions. *)
  let writers_of_key : (string, (int * int) list) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if spec.Spec.kind <> Spec.Read_only && has_effect res then
        List.iter
          (fun key ->
            let cur =
              match Hashtbl.find_opt writers_of_key key with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace writers_of_key key
              ((spec.Spec.id, res.Result.version) :: cur))
          (Spec.keys_written spec))
    history;
  let reads_checked = ref 0 in
  let observations = ref 0 in
  let violations = ref [] in
  let violation_count = ref 0 in
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if spec.Spec.kind = Spec.Read_only && Result.committed res then begin
        incr reads_checked;
        let root_v = res.Result.version in
        (* Union observed writers per key (a key may be read at several
           subtransactions; under 3V they all resolve the same version). *)
        let observed = Hashtbl.create 8 in
        List.iter
          (fun (key, (value : Value.t)) ->
            let cur =
              match Hashtbl.find_opt observed key with
              | Some s -> s
              | None -> Int_set.empty
            in
            Hashtbl.replace observed key
              (Value.Writers.fold Int_set.add value.Value.writers cur))
          res.Result.reads;
        (* Sorted key order: violations are capped at 20 and escape into
           the report, so which ones survive must not depend on hash
           layout. *)
        Hashtbl.fold (fun key seen acc -> (key, seen) :: acc) observed []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.iter (fun (key, seen) ->
            incr observations;
            let v = fence_of ~vector ~shard_of_node spec ~default:root_v key in
            let writers =
              match Hashtbl.find_opt writers_of_key key with
              | Some l -> l
              | None -> []
            in
            let expected =
              List.filter_map
                (fun (id, wv) -> if wv <= v then Some id else None)
                writers
              |> Int_set.of_list
            in
            let known_later =
              List.filter_map
                (fun (id, wv) -> if wv > v then Some id else None)
                writers
              |> Int_set.of_list
            in
            let missing = Int_set.diff expected seen in
            (* Anything seen that is not expected is either a known
               higher-version writer that leaked forward into this read, or
               a writer tag the history cannot account for at all (e.g. a
               dirty read from an effect-less abort). The two point at very
               different bugs, so report them separately. *)
            let surplus = Int_set.diff seen expected in
            let leaked_future = Int_set.inter surplus known_later in
            let unknown = Int_set.diff surplus known_later in
            if
              not
                (Int_set.is_empty missing
                && Int_set.is_empty leaked_future
                && Int_set.is_empty unknown)
            then begin
              incr violation_count;
              if List.length !violations < 20 then
                violations :=
                  {
                    read_txn = spec.Spec.id;
                    key;
                    version = v;
                    missing = Int_set.elements missing;
                    leaked_future = Int_set.elements leaked_future;
                    unknown = Int_set.elements unknown;
                  }
                  :: !violations
            end)
      end)
    history;
  {
    reads_checked = !reads_checked;
    observations = !observations;
    violations = List.rev !violations;
    violation_count = !violation_count;
  }

let clean r = r.violation_count = 0

let pp ppf r =
  Format.fprintf ppf "reads=%d observations=%d violations=%d%s" r.reads_checked
    r.observations r.violation_count
    (if clean r then " (exact)" else " (VIOLATIONS)");
  List.iteri
    (fun i v ->
      if i < 3 then
        Format.fprintf ppf
          "@ [txn %d key %s v%d missing={%s} leaked-future={%s} unknown={%s}]"
          v.read_txn v.key v.version
          (String.concat "," (List.map string_of_int v.missing))
          (String.concat "," (List.map string_of_int v.leaked_future))
          (String.concat "," (List.map string_of_int v.unknown)))
    r.violations
