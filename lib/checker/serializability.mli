(** One-copy serializability certifier — the paper's Theorem 1 made
    executable.

    Builds the multiversion serialization graph (MVSG) of a completed
    history and certifies it acyclic. Nodes are the effect-ful update
    transactions plus the committed transactions that read. Edges:

    - {e reads-from} (w → r): reader [r] observed writer [w]'s tag on some
      key. In any one-copy serial order [w] must precede [r].
    - {e anti-dependency} (r → w): reader [r] observed a key written by the
      effect-ful update [w] {e without} [w]'s tag. Writer tags are monotone
      (every operation preserves the tags already on a value), so had [w]
      preceded [r] on one copy, [r] would have seen the tag — hence [r]
      precedes [w]. Checked per observation, so a non-repeatable read (same
      key seen with and without [w] inside one transaction) closes a
      two-edge cycle.
    - {e version order} (w1 → w2): both wrote the same key, [w1] at a
      strictly lower 3V version, and at least one of the two wrote the key
      non-commutingly ([Overwrite]). Commuting writers are never ordered
      against each other — increments at versions 1 and 2 commute, and
      ordering them would manufacture false cycles around legitimate
      commuting schedules. Baselines stamp every transaction with the same
      version, so for them the graph degenerates to reads-from +
      anti-dependency edges, which are engine-agnostic and sound.

    A cycle is reported as a minimal witness: the shortest edge cycle inside
    the smallest strongly-connected component, found by an iterative Tarjan
    pass followed by breadth-first search. Observed writer tags that no
    effect-ful transaction in the history accounts for (dirty reads of true
    aborts) get no node or edge; they are surfaced in [unknown_count] /
    [unknown_tags] and certifiers downstream must treat them as failures in
    their own right. *)

type edge_kind = Reads_from | Anti_dependency | Version_order

type edge = {
  src : int;  (** transaction id the edge leaves *)
  dst : int;  (** transaction id the edge enters *)
  key : string;  (** a key witnessing the conflict *)
  kind : edge_kind;
}

type report = {
  txns : int;  (** graph nodes: effect-ful updates + committed readers *)
  readers : int;
  writers : int;
  edges : int;  (** distinct (src, dst, kind) edges *)
  rf_edges : int;
  anti_edges : int;
  ww_edges : int;
  unknown_count : int;
      (** (reader, key, tag) observations no effect-ful update accounts for *)
  unknown_tags : (int * string * int) list;  (** capped at 20 *)
  cycle : edge list option;
      (** a minimal cycle witness — [Some] iff the MVSG has a cycle; edge
          [i]'s [dst] is edge [i+1]'s [src], wrapping around *)
}

(** [certify ?shard_of_node history] builds the MVSG of a finished run
    and searches it for a cycle. For sharded histories pass
    [shard_of_node]: version-order edges are then drawn only between
    writers of the same shard (a writer's shard is its root node's) —
    shard frontiers advance independently, so version numbers from
    different shards are incomparable and ordering them would fabricate
    edges. Omitted, all writers share one frontier (the historical
    single-coordinator reading). *)
val certify :
  ?shard_of_node:(int -> int) -> (Txn.Spec.t * Txn.Result.t) list -> report

(** [serializable r] — no cycle. Unknown tags do not affect this; check
    [unknown_count] separately when the history is supposed to be clean. *)
val serializable : report -> bool

(** One-line graph summary: node/edge counts and the certification
    verdict. *)
val pp : Format.formatter -> report -> unit

(** Multi-line rendering of the cycle witness (no-op when acyclic). *)
val pp_witness : Format.formatter -> report -> unit
