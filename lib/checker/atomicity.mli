(** Atomic-visibility checker — the correctness oracle for every engine.

    The paper's inter-node version consistency (Definition 3.2) demands that
    no query observe a partially executed update transaction. Because every
    write tags the value with its transaction id ({!Txn.Value.t}[.writers]),
    this is checkable offline: for each committed read-only transaction [r]
    and each effect-ful update transaction [u] whose written keys overlap
    the keys [r] read in at least two places, [r] must have observed [u] on
    {e all} of those keys or on {e none} of them.

    The checker also counts {e dirty reads}: observations of transactions
    that aborted without effect (a correctly functioning engine never
    produces any, since 3V buffers NC writes and 2PC buffers everything). *)

type report = {
  reads_checked : int;  (** committed read-only transactions examined *)
  pairs_checked : int;  (** (read, update) pairs with ≥ 2 overlapping keys *)
  partial_reads : int;  (** atomic-visibility violations *)
  dirty_reads : int;  (** observations of effect-less aborted transactions *)
  examples : (int * int) list;
      (** up to 10 offending (read txn id, update txn id) pairs *)
}

(** [check history] examines every (spec, result) pair of a finished run.
    Results that are still pending must not be included. *)
val check : (Txn.Spec.t * Txn.Result.t) list -> report

(** True when the report shows no violation of either kind. *)
val clean : report -> bool

(** One-line summary: pairs checked, partial reads, dirty reads. *)
val pp : Format.formatter -> report -> unit
