(** End-state replay check for commuting histories.

    Because commuting updates yield the same final state under any order,
    the final database state is predictable offline: for every key touched
    only by [Incr]/[Append] writes, the final amount must equal the sum of
    the deltas of all committed transactions that wrote it (compensated
    transactions net to zero by construction). Comparing this prediction
    against an engine's settled store is a whole-run integrity check —
    a lost, duplicated, or half-applied subtransaction shows up here even
    if no read happened to witness it.

    Keys written by any [Overwrite] (order-dependent) are skipped. *)

type mismatch = { key : string; expected : float; actual : float }

type report = {
  keys_checked : int;
  keys_skipped : int;  (** keys with non-commuting writes *)
  mismatches : mismatch list;  (** capped at 20 *)
  mismatch_count : int;
}

(** [expected history] predicts per-key final amounts from committed
    commuting transactions, also returning the set of skipped keys. *)
val expected : (Txn.Spec.t * Txn.Result.t) list -> (string, float) Hashtbl.t

(** [check history ~lookup] compares the prediction against the engine's
    settled state; [lookup key] must return the latest value of [key] (or
    [None] if the key was never materialized, treated as amount 0). *)
val check :
  (Txn.Spec.t * Txn.Result.t) list ->
  lookup:(string -> Txn.Value.t option) ->
  report

(** True when no mismatch was found. *)
val clean : report -> bool

(** Summary line plus one line per (capped) mismatch. *)
val pp : Format.formatter -> report -> unit
